//! The fully-associative stash (the paper's F-Stash).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::{BlockAddr, Leaf, StoredBlock, TreeLayout};

/// The small fully-associative on-chip buffer holding in-flight blocks.
///
/// Path ORAM temporarily parks blocks here between the read and write
/// phases, and blocks that cannot be pushed into the tree accumulate here
/// until background eviction drains them (Ren et al. \[25\]). Capacity is a
/// *soft* threshold: occupancy may exceed it transiently (the protocol then
/// schedules background-eviction paths), mirroring how the paper converts
/// stash overflow from a correctness failure into a performance cost.
///
/// # Examples
///
/// ```
/// use iroram_protocol::{Stash, StoredBlock, BlockAddr, Leaf};
/// let mut s = Stash::new(200);
/// s.insert(StoredBlock { addr: BlockAddr(1), leaf: Leaf(0), payload: 9 });
/// assert!(s.contains(BlockAddr(1)));
/// assert_eq!(s.take(BlockAddr(1)).unwrap().payload, 9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stash {
    blocks: HashMap<u64, StoredBlock>,
    capacity: usize,
    max_occupancy: usize,
}

impl Stash {
    /// Creates an empty stash with soft capacity `capacity` (the paper uses
    /// 200 entries, Table I).
    pub fn new(capacity: usize) -> Self {
        Stash {
            blocks: HashMap::new(),
            capacity,
            max_occupancy: 0,
        }
    }

    /// The soft capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The high-water mark of occupancy over the stash's lifetime.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Whether occupancy exceeds the soft capacity (background eviction
    /// should run).
    pub fn over_capacity(&self) -> bool {
        self.blocks.len() > self.capacity
    }

    /// Inserts a block (replacing any stale copy of the same address).
    pub fn insert(&mut self, block: StoredBlock) {
        self.blocks.insert(block.addr.0, block);
        self.max_occupancy = self.max_occupancy.max(self.blocks.len());
    }

    /// Whether a block with `addr` is resident.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.blocks.contains_key(&addr.0)
    }

    /// Immutable view of a resident block.
    pub fn get(&self, addr: BlockAddr) -> Option<&StoredBlock> {
        self.blocks.get(&addr.0)
    }

    /// Mutable view of a resident block (for payload updates and remaps).
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut StoredBlock> {
        self.blocks.get_mut(&addr.0)
    }

    /// Removes and returns the block with `addr`.
    pub fn take(&mut self, addr: BlockAddr) -> Option<StoredBlock> {
        self.blocks.remove(&addr.0)
    }

    /// Iterates over resident blocks in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredBlock> {
        self.blocks.values()
    }

    /// Plans the write-back of a path to `leaf`: selects, for each level in
    /// `[top_level, L)`, up to `Z_level` stash blocks that may legally live
    /// in that level's bucket on this path, **removing them from the stash**.
    ///
    /// Returns one `Vec<StoredBlock>` per level (index 0 of the result is
    /// `top_level`). Blocks are pushed as deep as possible (the Path ORAM
    /// eviction rule); the greedy deepest-first order is optimal for
    /// maximizing placed blocks. `exclude` (the just-requested block under
    /// the immediate-remap policy, which returns to the program) is never
    /// selected.
    ///
    /// `cap_override` lets the caller shrink a level's usable capacity (used
    /// by IR-Stash when an S-Stash set is full: those blocks are "skipped
    /// this round", paper Section IV-C); a `None` entry means use
    /// `layout.z_of(level)`.
    pub fn plan_writeback(
        &mut self,
        layout: &TreeLayout,
        leaf: Leaf,
        top_level: usize,
        mut may_place: impl FnMut(usize, &StoredBlock) -> bool,
    ) -> Vec<Vec<StoredBlock>> {
        let levels = layout.levels();
        // Candidate depths: deepest level each block may occupy on this path.
        let mut cands: Vec<(usize, u64)> = self
            .blocks
            .values()
            .map(|b| (layout.common_depth(b.leaf, leaf), b.addr.0))
            .collect();
        // Deepest-first; ties broken by address for determinism.
        cands.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut out: Vec<Vec<StoredBlock>> = vec![Vec::new(); levels - top_level];
        let mut cursor = 0usize;
        for level in (top_level..levels).rev() {
            let cap = layout.z_of(level) as usize;
            let slot = &mut out[level - top_level];
            // Blocks with common depth ≥ level can live at `level` (or
            // deeper, but deeper levels were already filled).
            while cursor < cands.len() && slot.len() < cap {
                let (depth, addr) = cands[cursor];
                if depth < level {
                    break;
                }
                cursor += 1;
                let block = self.blocks[&addr];
                if !may_place(level, &block) {
                    continue; // skipped this round (e.g. S-Stash set full)
                }
                slot.push(self.blocks.remove(&addr).expect("candidate resident"));
            }
            // Skipped blocks with depth ≥ level may still fit at a
            // shallower level; re-scan is handled by the shallower levels
            // because their depth also satisfies depth ≥ shallower level.
            // (cursor has moved past them, so re-insert logic below.)
            if slot.len() < cap {
                // Give passed-over candidates another chance at this level:
                // they were skipped by may_place at deeper levels, or left
                // behind by capacity; both remain eligible here.
                for i in 0..cursor {
                    if slot.len() >= cap {
                        break;
                    }
                    let (depth, addr) = cands[i];
                    if depth < level || !self.blocks.contains_key(&addr) {
                        continue;
                    }
                    let block = self.blocks[&addr];
                    if !may_place(level, &block) {
                        continue;
                    }
                    slot.push(self.blocks.remove(&addr).expect("candidate resident"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZAllocation;

    fn blk(addr: u64, leaf: u64) -> StoredBlock {
        StoredBlock {
            addr: BlockAddr(addr),
            leaf: Leaf(leaf),
            payload: addr * 100,
        }
    }

    fn layout4() -> TreeLayout {
        // 4 levels, Z=1 for visibility of placement decisions.
        TreeLayout::new(ZAllocation::uniform(4, 1))
    }

    #[test]
    fn insert_get_take() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 3));
        assert_eq!(s.len(), 1);
        assert!(s.contains(BlockAddr(1)));
        assert_eq!(s.get(BlockAddr(1)).unwrap().leaf, Leaf(3));
        s.get_mut(BlockAddr(1)).unwrap().payload = 7;
        assert_eq!(s.take(BlockAddr(1)).unwrap().payload, 7);
        assert!(s.is_empty());
    }

    #[test]
    fn insert_replaces_same_address() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 3));
        s.insert(blk(1, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BlockAddr(1)).unwrap().leaf, Leaf(5));
    }

    #[test]
    fn occupancy_tracking() {
        let mut s = Stash::new(2);
        s.insert(blk(1, 0));
        s.insert(blk(2, 0));
        assert!(!s.over_capacity());
        s.insert(blk(3, 0));
        assert!(s.over_capacity());
        assert_eq!(s.max_occupancy(), 3);
        s.take(BlockAddr(1));
        s.take(BlockAddr(2));
        assert_eq!(s.max_occupancy(), 3, "high-water mark persists");
    }

    #[test]
    fn writeback_pushes_deepest() {
        let mut s = Stash::new(10);
        // Block mapped to the accessed leaf itself: can go to leaf level.
        s.insert(blk(1, 5));
        // Block sharing only the root with leaf 5 (leaf 1 differs in top bit).
        s.insert(blk(2, 1));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, _| true);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[3], vec![blk(1, 5)], "own-leaf block at leaf level");
        assert_eq!(plan[0], vec![blk(2, 1)], "distant block at root");
        assert!(s.is_empty());
    }

    #[test]
    fn writeback_respects_capacity() {
        let mut s = Stash::new(10);
        // Three blocks all mapped to leaf 5; Z=1 per level: they can occupy
        // levels 3, 2, 1, 0 (all on the same path).
        for a in 1..=5 {
            s.insert(blk(a, 5));
        }
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, _| true);
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 4, "one block per level fits");
        assert_eq!(s.len(), 1, "one block left in stash");
    }

    #[test]
    fn writeback_excludes_via_predicate() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 5));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, b| b.addr != BlockAddr(1));
        assert!(plan.iter().all(Vec::is_empty));
        assert!(s.contains(BlockAddr(1)));
    }

    #[test]
    fn writeback_honours_top_level_offset() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 5)); // could go to leaf level
        s.insert(blk(2, 1)); // only the root — below top_level=1, unplaceable
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 1, |_, _| true);
        assert_eq!(plan.len(), 3, "levels 1..4");
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 1);
        assert!(s.contains(BlockAddr(2)), "root-only block stays in stash");
    }

    #[test]
    fn writeback_skip_then_place_shallower() {
        // A block skipped at the leaf level (e.g. S-Stash conflict) must
        // still be eligible for shallower levels.
        let mut s = Stash::new(10);
        s.insert(blk(1, 5));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |level, _| level != 3);
        assert!(plan[3].is_empty());
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 1, "placed at a shallower level instead");
        assert!(s.is_empty());
    }

    #[test]
    fn writeback_empty_stash() {
        let mut s = Stash::new(10);
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(0), 0, |_, _| true);
        assert!(plan.iter().all(Vec::is_empty));
    }
}
