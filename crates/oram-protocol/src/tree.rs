//! Dense storage for the ORAM tree's buckets, with an optional IRO-style
//! per-bucket integrity layer (checksums verified on read, repair by
//! re-fetch) and a fault-injection surface for corrupting stored lines.

use std::collections::BTreeMap;

use iroram_sim_engine::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

use crate::{BlockAddr, Leaf, StoredBlock, TreeLayout};

/// Sentinel address marking an empty (dummy) slot.
const DUMMY: u64 = u64::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    addr: u64,
    leaf: u64,
    payload: u64,
}

const EMPTY_SLOT: Slot = Slot {
    addr: DUMMY,
    leaf: 0,
    payload: 0,
};

/// The ORAM tree's slot array (logical storage for every level, including
/// levels that are mirrored on-chip by a tree-top store).
///
/// Real blocks and dummies share slots; a dummy is an empty slot (in
/// hardware it would be an encrypted indistinguishable block — the
/// distinguishability aspect is handled by the access protocol, not the
/// storage).
///
/// # Examples
///
/// ```
/// use iroram_protocol::{OramTree, TreeLayout, ZAllocation, StoredBlock, BlockAddr, Leaf};
/// let layout = TreeLayout::new(ZAllocation::uniform(3, 2));
/// let mut tree = OramTree::new(layout.clone());
/// tree.write_bucket(2, 3, vec![StoredBlock { addr: BlockAddr(1), leaf: Leaf(3), payload: 5 }]);
/// let blocks = tree.take_bucket(2, 3);
/// assert_eq!(blocks.len(), 1);
/// assert!(tree.take_bucket(2, 3).is_empty());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OramTree {
    // lint: allow(snapshot-drift, configuration; restore cross-checks the snapshot geometry against it)
    layout: TreeLayout,
    slots: Vec<Slot>,
    /// Real blocks per level, maintained incrementally for O(L) utilization
    /// snapshots.
    used_per_level: Vec<u64>,
    /// Real blocks per bucket, indexed by flat bucket index. Writes pack
    /// real blocks into slots `0..used` (dummies fill the tail), so a take
    /// walks exactly `used` contiguous slots instead of scanning all `Z`.
    used: Vec<u16>,
    /// Whether per-bucket checksums are maintained and verified (the
    /// IRO-style integrity layer; see [`OramTree::set_integrity`]).
    integrity: bool,
    /// Per-bucket checksums, indexed by flat bucket index
    /// `(1 << level) - 1 + bucket`. Empty while integrity is off.
    sums: Vec<u64>,
    /// Checksum of an all-dummy bucket at each level (a function of `Z`
    /// alone): what a bucket's checksum becomes after a take, precomputed
    /// so the fault-free fast paths never re-read slots to re-sum.
    // lint: allow(snapshot-drift, derived from the layout at construction)
    empty_sums: Vec<u64>,
    /// Outstanding injected corruptions: flat bucket index → `(slot, mask)`
    /// pairs whose XOR has been applied to the stored payload but not yet
    /// repaired or consumed.
    injected: BTreeMap<usize, Vec<(u32, u64)>>,
    istats: IntegrityStats,
}

/// Counters for the integrity layer's fault ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityStats {
    /// Corruptions injected into stored lines.
    pub injected: u64,
    /// Corruptions detected by a checksum mismatch on path read.
    pub detected: u64,
    /// Detected corruptions repaired (modelled re-fetch).
    pub recovered: u64,
    /// Corrupted real blocks consumed without detection (integrity off).
    pub undetected: u64,
}

/// FNV-1a-style fold for bucket checksums.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

impl OramTree {
    /// Creates an all-dummy tree (integrity layer off; see
    /// [`OramTree::set_integrity`]).
    pub fn new(layout: TreeLayout) -> Self {
        let slots = vec![EMPTY_SLOT; layout.total_slots() as usize];
        let used_per_level = vec![0; layout.levels()];
        let used = vec![0u16; (1usize << layout.levels()) - 1];
        let empty_sums = (0..layout.levels())
            .map(|level| {
                let mut h = 0xCBF2_9CE4_8422_2325u64;
                for _ in 0..layout.z_of(level) {
                    h = mix(h, DUMMY);
                    h = mix(h, 0);
                    h = mix(h, 0);
                }
                h
            })
            .collect();
        OramTree {
            layout,
            slots,
            used_per_level,
            used,
            integrity: false,
            sums: Vec::new(),
            empty_sums,
            injected: BTreeMap::new(),
            istats: IntegrityStats::default(),
        }
    }

    /// Whether no corruption has ever been injected. While pristine, every
    /// stored checksum matches its bucket by construction (the only
    /// mutations are take/write, which both refresh the sum), every dummy
    /// slot holds the canonical empty pattern, and the fast paths below may
    /// skip re-scanning slots. One `inject_fault` call permanently drops
    /// the tree back to the exhaustive legacy scans — fault campaigns pay
    /// full price, fault-free runs (the default) never re-read a bucket to
    /// checksum it.
    #[inline]
    fn pristine(&self) -> bool {
        self.istats.injected == 0
    }

    /// The layout.
    pub fn layout(&self) -> &TreeLayout {
        &self.layout
    }

    /// Flat bucket index for the checksum and fault ledgers.
    #[inline]
    fn bucket_index(&self, level: usize, bucket: u64) -> usize {
        ((1usize << level) - 1) + bucket as usize
    }

    /// Checksum of a bucket's current contents (dummies included, so a
    /// flipped bit anywhere in the stored bucket is visible). Walks the
    /// bucket's `Z` slots as one contiguous slice — the level-major arena
    /// makes a whole path's checksums sequential reads.
    pub fn bucket_sum(&self, level: usize, bucket: u64) -> u64 {
        let z = self.layout.z_of(level) as usize;
        if z == 0 {
            return 0xCBF2_9CE4_8422_2325;
        }
        let base = self.layout.slot_index(level, bucket, 0);
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for slot in &self.slots[base..base + z] {
            h = mix(h, slot.addr);
            h = mix(h, slot.leaf);
            h = mix(h, slot.payload);
        }
        h
    }

    /// The batched checksum kernel: one sum per level of the path to
    /// `leaf`, from `from_level` to the leaves, appended to `out`. The
    /// per-bucket folds are the same as [`OramTree::bucket_sum`], but the
    /// whole path is summed in one pass over the arena, which is what the
    /// read-phase verification consumes.
    pub fn path_sums_into(&self, leaf: Leaf, from_level: usize, out: &mut Vec<u64>) {
        for level in from_level..self.layout.levels() {
            let bucket = self.layout.bucket_on_path(leaf, level);
            out.push(self.bucket_sum(level, bucket));
        }
    }

    /// Refreshes a bucket's stored checksum after a legitimate mutation.
    #[inline]
    fn resum(&mut self, level: usize, bucket: u64) {
        if self.integrity {
            let idx = self.bucket_index(level, bucket);
            self.sums[idx] = self.bucket_sum(level, bucket);
        }
    }

    /// Turns the per-bucket checksum layer on or off. Enabling computes the
    /// checksum of every bucket once (O(total slots)); disabling drops them.
    pub fn set_integrity(&mut self, enabled: bool) {
        if enabled == self.integrity {
            return;
        }
        self.integrity = enabled;
        if enabled {
            let buckets = (1usize << self.layout.levels()) - 1;
            self.sums = vec![0; buckets];
            for level in 0..self.layout.levels() {
                for bucket in 0..(1u64 << level) {
                    let idx = self.bucket_index(level, bucket);
                    self.sums[idx] = self.bucket_sum(level, bucket);
                }
            }
        } else {
            self.sums = Vec::new();
        }
    }

    /// Whether the integrity layer is on.
    pub fn integrity(&self) -> bool {
        self.integrity
    }

    /// Integrity counters so far.
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.istats
    }

    /// Injects a fault: XORs `mask` into the stored payload of slot `slot`
    /// of bucket `(level, bucket)` — a bit flip in off-chip memory. The
    /// stored checksum is deliberately *not* refreshed: it still reflects
    /// the legitimate contents, which is what detection compares against.
    pub fn inject_fault(&mut self, level: usize, bucket: u64, slot: u32, mask: u64) {
        let idx = self.layout.slot_index(level, bucket, slot);
        self.slots[idx].payload ^= mask;
        let bidx = self.bucket_index(level, bucket);
        self.injected.entry(bidx).or_default().push((slot, mask));
        self.istats.injected += 1;
    }

    /// With integrity on: recomputes the bucket checksum and compares it to
    /// the stored one (the read-path verification step). On mismatch the
    /// recorded corruption masks are re-applied — modelling a re-fetch of
    /// the bucket from redundancy — and the detected/recovered counters
    /// grow. Returns the number of corruptions detected by this call (the
    /// caller charges the timing penalty per detection).
    pub fn verify_and_repair(&mut self, level: usize, bucket: u64) -> u64 {
        if !self.integrity {
            return 0;
        }
        if self.pristine() {
            // Nothing was ever corrupted, so the stored sum matches by
            // construction; skip the O(Z) re-scan (checked in debug).
            debug_assert_eq!(
                self.bucket_sum(level, bucket),
                self.sums[self.bucket_index(level, bucket)]
            );
            return 0;
        }
        let bidx = self.bucket_index(level, bucket);
        if self.bucket_sum(level, bucket) == self.sums[bidx] {
            return 0;
        }
        let entries = self.injected.remove(&bidx).unwrap_or_default();
        for &(slot, mask) in &entries {
            let idx = self.layout.slot_index(level, bucket, slot);
            self.slots[idx].payload ^= mask;
        }
        self.istats.detected += entries.len().max(1) as u64;
        self.istats.recovered += entries.len() as u64;
        if entries.is_empty() || self.bucket_sum(level, bucket) != self.sums[bidx] {
            // Unattributable mismatch (possible only outside the injection
            // model): resync so one event is not re-counted every read.
            self.sums[bidx] = self.bucket_sum(level, bucket);
        }
        entries.len().max(1) as u64
    }

    /// Verifies (and repairs) every memory bucket on the path to `leaf`
    /// from `from_level` down, returning the total detections — the
    /// batched read-phase verification step. Per-bucket effects and
    /// counter evolution are identical to calling
    /// [`OramTree::verify_and_repair`] level by level (a path visits each
    /// bucket at most once, so the per-bucket order is the same).
    pub fn verify_and_repair_path(&mut self, leaf: Leaf, from_level: usize) -> u64 {
        if !self.integrity || self.pristine() {
            #[cfg(debug_assertions)]
            if self.integrity {
                let mut sums = Vec::new();
                self.path_sums_into(leaf, from_level, &mut sums);
                for (level, sum) in (from_level..self.layout.levels()).zip(sums) {
                    let bucket = self.layout.bucket_on_path(leaf, level);
                    debug_assert_eq!(sum, self.sums[self.bucket_index(level, bucket)]);
                }
            }
            return 0;
        }
        let mut detections = 0;
        for level in from_level..self.layout.levels() {
            let bucket = self.layout.bucket_on_path(leaf, level);
            detections += self.verify_and_repair(level, bucket);
        }
        detections
    }

    /// Removes and returns the real blocks of bucket `(level, bucket)`
    /// (the read-path step: fetched blocks move to the stash, dummies are
    /// discarded).
    pub fn take_bucket(&mut self, level: usize, bucket: u64) -> Vec<StoredBlock> {
        let mut out = Vec::new();
        self.take_bucket_into(level, bucket, &mut out);
        out
    }

    /// Like [`OramTree::take_bucket`] but appends into `out`, reusing its
    /// capacity (the controller's per-path hot loop).
    pub fn take_bucket_into(&mut self, level: usize, bucket: u64, out: &mut Vec<StoredBlock>) {
        let z = self.layout.z_of(level);
        if self.pristine() {
            // Fast path: real blocks are packed into slots `0..used`, so
            // read exactly those and reset them; the bucket is all-dummy
            // afterwards, so its checksum is the precomputed per-level
            // empty sum — no slots are re-read. An empty bucket mutates
            // nothing at all.
            let bidx = self.bucket_index(level, bucket);
            let used = self.used[bidx] as usize;
            if used == 0 {
                return;
            }
            let base = self.layout.slot_index(level, bucket, 0);
            for slot in &mut self.slots[base..base + used] {
                debug_assert_ne!(slot.addr, DUMMY, "used count exceeds packed prefix");
                out.push(StoredBlock {
                    addr: BlockAddr(slot.addr),
                    leaf: Leaf(slot.leaf),
                    payload: slot.payload,
                });
                *slot = EMPTY_SLOT;
            }
            self.used[bidx] = 0;
            self.used_per_level[level] -= used as u64;
            if self.integrity {
                self.sums[bidx] = self.empty_sums[level];
            }
            return;
        }
        if !self.injected.is_empty() {
            // Corruptions still outstanding at consumption time were not
            // caught by verification (integrity off, or a direct take).
            // Count those sitting in real slots as undetected — their
            // corrupted payloads are about to enter the stash; masks on
            // dummy slots are discarded along with the dummies.
            let bidx = self.bucket_index(level, bucket);
            if let Some(entries) = self.injected.remove(&bidx) {
                for &(slot, _mask) in &entries {
                    let idx = self.layout.slot_index(level, bucket, slot);
                    if self.slots[idx].addr != DUMMY {
                        self.istats.undetected += 1;
                    }
                }
            }
        }
        let mut taken = 0u64;
        for s in 0..z {
            let idx = self.layout.slot_index(level, bucket, s);
            let slot = &mut self.slots[idx];
            if slot.addr != DUMMY {
                out.push(StoredBlock {
                    addr: BlockAddr(slot.addr),
                    leaf: Leaf(slot.leaf),
                    payload: slot.payload,
                });
                *slot = EMPTY_SLOT;
                taken += 1;
            }
        }
        self.used_per_level[level] -= taken;
        let bidx = self.bucket_index(level, bucket);
        self.used[bidx] = 0;
        self.resum(level, bucket);
    }

    /// Overwrites bucket `(level, bucket)` with `blocks`, padding the rest
    /// with dummies (the write-path step).
    ///
    /// # Panics
    ///
    /// Panics if more blocks than the bucket's capacity are supplied, or if
    /// any block's leaf path does not pass through this bucket.
    pub fn write_bucket(&mut self, level: usize, bucket: u64, mut blocks: Vec<StoredBlock>) {
        self.write_bucket_from(level, bucket, &mut blocks);
    }

    /// Like [`OramTree::write_bucket`] but drains `blocks`, leaving its
    /// capacity behind for the caller to reuse.
    ///
    /// # Panics
    ///
    /// Same contract as [`OramTree::write_bucket`].
    pub fn write_bucket_from(&mut self, level: usize, bucket: u64, blocks: &mut Vec<StoredBlock>) {
        let z = self.layout.z_of(level);
        assert!(
            blocks.len() <= z as usize,
            "bucket overflow: {} blocks into Z={z}",
            blocks.len()
        );
        let bidx = self.bucket_index(level, bucket);
        if self.pristine() {
            // Fast path: slots beyond the packed prefix are already the
            // canonical empty pattern, so only `max(old_used, new_len)`
            // slots are touched, and the new checksum folds straight from
            // the incoming blocks plus the dummy tail — the written slots
            // are never read back.
            let old = self.used[bidx] as usize;
            let new = blocks.len();
            let base = self.layout.slot_index(level, bucket, 0);
            for (slot, b) in self.slots[base..base + new].iter_mut().zip(blocks.iter()) {
                debug_assert_eq!(
                    self.layout.bucket_on_path(b.leaf, level),
                    bucket,
                    "block {} (leaf {}) does not belong to bucket {bucket} at level {level}",
                    b.addr,
                    b.leaf
                );
                *slot = Slot {
                    addr: b.addr.0,
                    leaf: b.leaf.0,
                    payload: b.payload,
                };
            }
            if old > new {
                self.slots[base + new..base + old].fill(EMPTY_SLOT);
            }
            self.used[bidx] = new as u16;
            self.used_per_level[level] += new as u64;
            self.used_per_level[level] -= old as u64;
            if self.integrity {
                let mut h = 0xCBF2_9CE4_8422_2325u64;
                for b in blocks.iter() {
                    h = mix(h, b.addr.0);
                    h = mix(h, b.leaf.0);
                    h = mix(h, b.payload);
                }
                for _ in new..z as usize {
                    h = mix(h, DUMMY);
                    h = mix(h, 0);
                    h = mix(h, 0);
                }
                self.sums[bidx] = h;
            }
            blocks.clear();
            return;
        }
        // Clear old contents first.
        let mut removed = 0u64;
        for s in 0..z {
            let idx = self.layout.slot_index(level, bucket, s);
            if self.slots[idx].addr != DUMMY {
                removed += 1;
            }
            self.slots[idx] = EMPTY_SLOT;
        }
        self.used_per_level[level] -= removed;
        for (s, b) in blocks.iter().enumerate() {
            debug_assert_eq!(
                self.layout.bucket_on_path(b.leaf, level),
                bucket,
                "block {} (leaf {}) does not belong to bucket {bucket} at level {level}",
                b.addr,
                b.leaf
            );
            let idx = self.layout.slot_index(level, bucket, s as u32);
            self.slots[idx] = Slot {
                addr: b.addr.0,
                leaf: b.leaf.0,
                payload: b.payload,
            };
        }
        self.used_per_level[level] += blocks.len() as u64;
        self.used[bidx] = blocks.len() as u16;
        blocks.clear();
        if !self.injected.is_empty() {
            // Overwriting a corrupted bucket destroys the corruption before
            // anything consumed it — drop the ledger entries uncounted.
            let bidx = self.bucket_index(level, bucket);
            self.injected.remove(&bidx);
        }
        self.resum(level, bucket);
    }

    /// Non-destructive scan of a bucket's real blocks.
    pub fn peek_bucket(&self, level: usize, bucket: u64) -> Vec<StoredBlock> {
        let z = self.layout.z_of(level);
        (0..z)
            .filter_map(|s| {
                let slot = &self.slots[self.layout.slot_index(level, bucket, s)];
                (slot.addr != DUMMY).then_some(StoredBlock {
                    addr: BlockAddr(slot.addr),
                    leaf: Leaf(slot.leaf),
                    payload: slot.payload,
                })
            })
            .collect()
    }

    /// Real-block count at `level`.
    pub fn used_at(&self, level: usize) -> u64 {
        self.used_per_level[level]
    }

    /// Space utilization of `level`: real blocks / allocated slots.
    pub fn utilization_at(&self, level: usize) -> f64 {
        let slots = self.layout.slots_at(level);
        if slots == 0 {
            0.0
        } else {
            self.used_per_level[level] as f64 / slots as f64
        }
    }

    /// Per-level `(used, capacity)` pairs.
    pub fn occupancy(&self) -> Vec<(u64, u64)> {
        (0..self.layout.levels())
            .map(|l| (self.used_per_level[l], self.layout.slots_at(l)))
            .collect()
    }

    /// Total real blocks stored.
    pub fn total_used(&self) -> u64 {
        self.used_per_level.iter().sum()
    }

    /// Serializes the full slot arena, occupancy ledgers, checksum table,
    /// outstanding-fault ledger and integrity counters for a checkpoint.
    /// The layout and the integrity *flag* come from configuration and are
    /// written only as cross-checks. Checksums are serialized verbatim (not
    /// recomputed on restore) because with an outstanding injected
    /// corruption the stored sum deliberately reflects the legitimate
    /// contents, not the corrupted slots.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.slots.len());
        for s in &self.slots {
            w.put_u64(s.addr);
            w.put_u64(s.leaf);
            w.put_u64(s.payload);
        }
        w.put_usize(self.used_per_level.len());
        for &u in &self.used_per_level {
            w.put_u64(u);
        }
        w.put_usize(self.used.len());
        for &u in &self.used {
            w.put_u32(u as u32);
        }
        w.put_bool(self.integrity);
        w.put_usize(self.sums.len());
        for &s in &self.sums {
            w.put_u64(s);
        }
        w.put_usize(self.injected.len());
        for (&bidx, entries) in &self.injected {
            w.put_usize(bidx);
            w.put_usize(entries.len());
            for &(slot, mask) in entries {
                w.put_u32(slot);
                w.put_u64(mask);
            }
        }
        w.put_u64(self.istats.injected);
        w.put_u64(self.istats.detected);
        w.put_u64(self.istats.recovered);
        w.put_u64(self.istats.undetected);
    }

    /// Restores the state captured by [`OramTree::save_state`] into a tree
    /// built from the same layout and integrity configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if the snapshot's geometry or integrity mode
    /// disagrees with this tree; any [`SnapError`] on truncation.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_seq_len(24)?;
        if n != self.slots.len() {
            return Err(SnapError::Corrupt("tree slot count mismatch"));
        }
        for s in &mut self.slots {
            s.addr = r.take_u64()?;
            s.leaf = r.take_u64()?;
            s.payload = r.take_u64()?;
        }
        let n = r.take_seq_len(8)?;
        if n != self.used_per_level.len() {
            return Err(SnapError::Corrupt("tree level count mismatch"));
        }
        for u in &mut self.used_per_level {
            *u = r.take_u64()?;
        }
        let n = r.take_seq_len(4)?;
        if n != self.used.len() {
            return Err(SnapError::Corrupt("tree bucket count mismatch"));
        }
        for u in &mut self.used {
            let v = r.take_u32()?;
            *u = u16::try_from(v).map_err(|_| SnapError::Corrupt("bucket fill exceeds u16"))?;
        }
        if r.take_bool()? != self.integrity {
            return Err(SnapError::Corrupt("integrity mode mismatch"));
        }
        let n = r.take_seq_len(8)?;
        if n != if self.integrity { (1usize << self.layout.levels()) - 1 } else { 0 } {
            return Err(SnapError::Corrupt("checksum table size mismatch"));
        }
        self.sums.clear();
        for _ in 0..n {
            self.sums.push(r.take_u64()?);
        }
        let n = r.take_seq_len(16)?;
        self.injected.clear();
        for _ in 0..n {
            let bidx = r.take_usize()?;
            let m = r.take_seq_len(12)?;
            let mut entries = Vec::with_capacity(m);
            for _ in 0..m {
                let slot = r.take_u32()?;
                let mask = r.take_u64()?;
                entries.push((slot, mask));
            }
            self.injected.insert(bidx, entries);
        }
        self.istats = IntegrityStats {
            injected: r.take_u64()?,
            detected: r.take_u64()?,
            recovered: r.take_u64()?,
            undetected: r.take_u64()?,
        };
        Ok(())
    }

    /// Iterates over all stored real blocks with their coordinates
    /// (for invariant checking; O(total slots)).
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, u64, StoredBlock)> + '_ {
        (0..self.layout.levels()).flat_map(move |level| {
            (0..(1u64 << level)).flat_map(move |bucket| {
                (0..self.layout.z_of(level)).filter_map(move |s| {
                    let slot = &self.slots[self.layout.slot_index(level, bucket, s)];
                    (slot.addr != DUMMY).then_some((
                        level,
                        bucket,
                        StoredBlock {
                            addr: BlockAddr(slot.addr),
                            leaf: Leaf(slot.leaf),
                            payload: slot.payload,
                        },
                    ))
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZAllocation;

    fn blk(addr: u64, leaf: u64) -> StoredBlock {
        StoredBlock {
            addr: BlockAddr(addr),
            leaf: Leaf(leaf),
            payload: addr,
        }
    }

    fn tree3() -> OramTree {
        OramTree::new(TreeLayout::new(ZAllocation::uniform(3, 2)))
    }

    #[test]
    fn starts_empty() {
        let t = tree3();
        assert_eq!(t.total_used(), 0);
        assert_eq!(t.utilization_at(0), 0.0);
        assert!(t.peek_bucket(0, 0).is_empty());
    }

    #[test]
    fn write_take_round_trip() {
        let mut t = tree3();
        t.write_bucket(2, 1, vec![blk(10, 1), blk(11, 1)]);
        assert_eq!(t.used_at(2), 2);
        assert_eq!(t.utilization_at(2), 2.0 / 8.0);
        let got = t.take_bucket(2, 1);
        assert_eq!(got.len(), 2);
        assert_eq!(t.used_at(2), 0);
    }

    #[test]
    fn write_overwrites_previous_contents() {
        let mut t = tree3();
        t.write_bucket(2, 1, vec![blk(10, 1)]);
        t.write_bucket(2, 1, vec![blk(11, 1), blk(12, 1)]);
        let got = t.peek_bucket(2, 1);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|b| b.addr != BlockAddr(10)));
        assert_eq!(t.used_at(2), 2);
    }

    #[test]
    fn partial_bucket_pads_with_dummies() {
        let mut t = tree3();
        t.write_bucket(1, 0, vec![blk(5, 1)]);
        assert_eq!(t.peek_bucket(1, 0).len(), 1);
        assert_eq!(t.take_bucket(1, 0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket overflow")]
    fn overflow_panics() {
        let mut t = tree3();
        t.write_bucket(0, 0, vec![blk(1, 0), blk(2, 0), blk(3, 0)]);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn wrong_path_panics_in_debug() {
        let mut t = tree3();
        // leaf 3's path at level 2 is bucket 3, not bucket 0.
        t.write_bucket(2, 0, vec![blk(1, 3)]);
    }

    #[test]
    fn iter_blocks_reports_coordinates() {
        let mut t = tree3();
        t.write_bucket(2, 3, vec![blk(7, 3)]);
        t.write_bucket(0, 0, vec![blk(8, 2)]);
        let all: Vec<_> = t.iter_blocks().collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&(2, 3, blk(7, 3))));
        assert!(all.contains(&(0, 0, blk(8, 2))));
    }

    #[test]
    fn occupancy_snapshot() {
        let mut t = tree3();
        t.write_bucket(2, 0, vec![blk(1, 0), blk(2, 0)]);
        let occ = t.occupancy();
        assert_eq!(occ, vec![(0, 2), (0, 4), (2, 8)]);
    }

    #[test]
    fn integrity_detects_and_repairs_injected_corruption() {
        let mut t = tree3();
        t.set_integrity(true);
        t.write_bucket(2, 1, vec![blk(10, 1), blk(11, 1)]);
        assert_eq!(t.verify_and_repair(2, 1), 0, "clean bucket must verify");
        t.inject_fault(2, 1, 0, 0xFF);
        assert_eq!(t.verify_and_repair(2, 1), 1);
        let s = t.integrity_stats();
        assert_eq!((s.injected, s.detected, s.recovered, s.undetected), (1, 1, 1, 0));
        // Repaired payload is the original.
        let got = t.take_bucket(2, 1);
        assert!(got.iter().any(|b| b.addr == BlockAddr(10) && b.payload == 10));
        assert_eq!(t.integrity_stats().undetected, 0);
    }

    #[test]
    fn corruption_without_integrity_is_undetected_when_consumed() {
        let mut t = tree3();
        t.write_bucket(2, 1, vec![blk(10, 1)]);
        t.inject_fault(2, 1, 0, 0xFF);
        assert_eq!(t.verify_and_repair(2, 1), 0, "integrity off: no detection");
        let got = t.take_bucket(2, 1);
        assert_eq!(got[0].payload, 10 ^ 0xFF, "corrupted payload consumed");
        let s = t.integrity_stats();
        assert_eq!((s.detected, s.undetected), (0, 1));
    }

    #[test]
    fn corruption_of_dummy_slot_is_harmless() {
        let mut t = tree3();
        t.write_bucket(2, 1, vec![blk(10, 1)]);
        // Slot 1 of the bucket is a dummy; corrupt it.
        t.inject_fault(2, 1, 1, 0xAB);
        let got = t.take_bucket(2, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 10);
        assert_eq!(t.integrity_stats().undetected, 0);
    }

    #[test]
    fn overwrite_destroys_outstanding_corruption() {
        let mut t = tree3();
        t.set_integrity(true);
        t.write_bucket(2, 1, vec![blk(10, 1)]);
        t.inject_fault(2, 1, 0, 0xFF);
        t.write_bucket(2, 1, vec![blk(11, 1)]);
        assert_eq!(t.verify_and_repair(2, 1), 0, "rewrite resyncs the checksum");
        let s = t.integrity_stats();
        assert_eq!((s.detected, s.undetected), (0, 0));
    }

    #[test]
    fn save_restore_round_trips_mid_fault_state() {
        let mut t = tree3();
        t.set_integrity(true);
        t.write_bucket(2, 1, vec![blk(10, 1), blk(11, 1)]);
        t.write_bucket(1, 0, vec![blk(5, 1)]);
        t.inject_fault(2, 1, 0, 0xFF); // outstanding, undetected yet
        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = tree3();
        fresh.set_integrity(true);
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        // The outstanding corruption must still be detectable and repairable.
        assert_eq!(fresh.verify_and_repair(2, 1), 1);
        let got = fresh.take_bucket(2, 1);
        assert!(got.iter().any(|b| b.addr == BlockAddr(10) && b.payload == 10));
        assert_eq!(fresh.used_at(1), 1);
        assert_eq!(fresh.integrity_stats().injected, 1);
    }

    #[test]
    fn restore_rejects_wrong_integrity_mode() {
        let mut t = tree3();
        t.set_integrity(true);
        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = tree3(); // integrity off
        let mut r = SnapReader::new(&bytes);
        assert!(fresh.restore_state(&mut r).is_err());
    }

    #[test]
    fn checksums_track_legitimate_mutations() {
        let mut t = tree3();
        t.set_integrity(true);
        t.write_bucket(2, 3, vec![blk(7, 3)]);
        assert_eq!(t.verify_and_repair(2, 3), 0);
        let _ = t.take_bucket(2, 3);
        assert_eq!(t.verify_and_repair(2, 3), 0);
    }
}
