//! Logical geometry of the ORAM tree.

use serde::{Deserialize, Serialize};

use crate::{Leaf, ZAllocation};

/// The logical geometry of an ORAM tree: level count, per-level bucket
/// capacities, and path arithmetic.
///
/// "Logical" means on-chip-cached top levels keep their real capacities here
/// (they hold blocks, just not in memory); the memory-side view with cached
/// levels zeroed is produced by [`TreeLayout::memory_z`] for the DRAM layout.
///
/// # Examples
///
/// ```
/// use iroram_protocol::{TreeLayout, ZAllocation, Leaf};
/// let layout = TreeLayout::new(ZAllocation::uniform(4, 4));
/// assert_eq!(layout.levels(), 4);
/// assert_eq!(layout.num_leaves(), 8);
/// assert_eq!(layout.bucket_on_path(Leaf(5), 3), 5);
/// assert_eq!(layout.common_depth(Leaf(5), Leaf(4)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeLayout {
    zalloc: ZAllocation,
    level_base: Vec<u64>,
    total_slots: u64,
}

impl TreeLayout {
    /// Creates a layout from a per-level allocation.
    pub fn new(zalloc: ZAllocation) -> Self {
        let levels = zalloc.levels();
        let mut level_base = Vec::with_capacity(levels);
        let mut acc = 0u64;
        for l in 0..levels {
            level_base.push(acc);
            acc += (1u64 << l) * zalloc.z_of(l) as u64;
        }
        TreeLayout {
            zalloc,
            level_base,
            total_slots: acc,
        }
    }

    /// Number of levels `L` (root is level 0, leaves level `L-1`).
    pub fn levels(&self) -> usize {
        self.zalloc.levels()
    }

    /// The per-level allocation.
    pub fn zalloc(&self) -> &ZAllocation {
        &self.zalloc
    }

    /// Bucket capacity at `level`.
    #[inline]
    pub fn z_of(&self, level: usize) -> u32 {
        self.zalloc.z_of(level)
    }

    /// Number of leaf buckets, `2^(L-1)`.
    pub fn num_leaves(&self) -> u64 {
        1u64 << (self.levels() - 1)
    }

    /// Total logical slot count across all levels.
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Slot count at one level (`2^level × Z_level`).
    pub fn slots_at(&self, level: usize) -> u64 {
        (1u64 << level) * self.z_of(level) as u64
    }

    /// The bucket index (within its level) on the path to `leaf` at `level`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `leaf` or `level` is out of range.
    #[inline]
    pub fn bucket_on_path(&self, leaf: Leaf, level: usize) -> u64 {
        debug_assert!(leaf.0 < self.num_leaves());
        debug_assert!(level < self.levels());
        leaf.0 >> (self.levels() - 1 - level)
    }

    /// Flat index of `(level, bucket, slot)` into a dense slot array.
    #[inline]
    pub fn slot_index(&self, level: usize, bucket: u64, slot: u32) -> usize {
        debug_assert!(slot < self.z_of(level));
        (self.level_base[level] + bucket * self.z_of(level) as u64 + slot as u64) as usize
    }

    /// The deepest level at which the paths to `a` and `b` share a bucket.
    ///
    /// Both paths always share the root (level 0); identical leaves share
    /// all `L` levels, returning `L-1`. This is the quantity that decides
    /// how deep a stash block can be written back on another path, computed
    /// in O(1) from the XOR of the leaf indices.
    #[inline]
    pub fn common_depth(&self, a: Leaf, b: Leaf) -> usize {
        let lvl = self.levels() - 1;
        let x = a.0 ^ b.0;
        if x == 0 {
            lvl
        } else {
            // Highest differing bit position within the leaf-index width.
            let hb = 63 - x.leading_zeros() as usize;
            lvl - 1 - hb
        }
    }

    /// The memory-side per-level capacities: logical `Z` with the top
    /// `cached_levels` zeroed (those buckets live on-chip).
    pub fn memory_z(&self, cached_levels: usize) -> Vec<u32> {
        (0..self.levels())
            .map(|l| if l < cached_levels { 0 } else { self.z_of(l) })
            .collect()
    }

    /// Blocks a path access reads from memory when the top `cached_levels`
    /// are on-chip (the paper's per-path block count "PL").
    pub fn path_len_memory(&self, cached_levels: usize) -> u64 {
        (cached_levels..self.levels())
            .map(|l| self.z_of(l) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(levels: usize, z: u32) -> TreeLayout {
        TreeLayout::new(ZAllocation::uniform(levels, z))
    }

    #[test]
    fn geometry_uniform() {
        let t = uniform(5, 4);
        assert_eq!(t.levels(), 5);
        assert_eq!(t.num_leaves(), 16);
        assert_eq!(t.total_slots(), 4 * 31);
        assert_eq!(t.slots_at(0), 4);
        assert_eq!(t.slots_at(4), 64);
    }

    #[test]
    fn bucket_walk_matches_bits() {
        let t = uniform(4, 4);
        // leaf 6 = 0b110 → buckets 0, 1, 3, 6.
        assert_eq!(t.bucket_on_path(Leaf(6), 0), 0);
        assert_eq!(t.bucket_on_path(Leaf(6), 1), 1);
        assert_eq!(t.bucket_on_path(Leaf(6), 2), 3);
        assert_eq!(t.bucket_on_path(Leaf(6), 3), 6);
    }

    #[test]
    fn slot_index_dense_and_unique() {
        let t = TreeLayout::new(ZAllocation::uniform(4, 3));
        let mut seen = std::collections::HashSet::new();
        for l in 0..4 {
            for b in 0..(1u64 << l) {
                for s in 0..3 {
                    assert!(seen.insert(t.slot_index(l, b, s)));
                }
            }
        }
        assert_eq!(seen.len() as u64, t.total_slots());
        assert_eq!(seen.iter().max().copied().unwrap() as u64, t.total_slots() - 1);
    }

    #[test]
    fn common_depth_brute_force_agreement() {
        let t = uniform(6, 4);
        for a in 0..t.num_leaves() {
            for b in 0..t.num_leaves() {
                let mut expect = 0;
                for l in 0..t.levels() {
                    if t.bucket_on_path(Leaf(a), l) == t.bucket_on_path(Leaf(b), l) {
                        expect = l;
                    } else {
                        break;
                    }
                }
                assert_eq!(
                    t.common_depth(Leaf(a), Leaf(b)),
                    expect,
                    "leaves {a},{b}"
                );
            }
        }
    }

    #[test]
    fn common_depth_same_leaf_is_leaf_level() {
        let t = uniform(8, 4);
        assert_eq!(t.common_depth(Leaf(99), Leaf(99)), 7);
        // Leaves differing in the top bit share only the root.
        assert_eq!(t.common_depth(Leaf(0), Leaf(64)), 0);
    }

    #[test]
    fn memory_view_zeroes_cached_top() {
        let t = uniform(5, 4);
        assert_eq!(t.memory_z(2), vec![0, 0, 4, 4, 4]);
        assert_eq!(t.path_len_memory(2), 12);
        assert_eq!(t.path_len_memory(0), 20);
    }

    #[test]
    fn variable_z_levels() {
        let t = TreeLayout::new(ZAllocation::from_z(vec![4, 4, 2, 3]));
        assert_eq!(t.z_of(2), 2);
        assert_eq!(t.total_slots(), 4 + 8 + 8 + 24);
        assert_eq!(t.path_len_memory(0), 13);
    }
}
