//! Per-level bucket-size allocation — the IR-Alloc mechanism.
//!
//! Traditional Path ORAM uses one `Z` for every tree level. IR-Alloc
//! (paper Section IV-B) exploits the low space utilization of middle tree
//! levels (Fig. 3) to shrink their buckets, reducing the number of blocks
//! every path access must touch. This module provides:
//!
//! * [`ZAllocation`] — an explicit per-level `Z` vector with the paper's
//!   named configurations (`IR-Alloc1..4`, the integrated IR-ORAM setting)
//!   generalized to any tree height, and
//! * [`ZAllocation::greedy_search`] — the paper's offline search that lowers
//!   `Z` values level by level under two constraints: total space reduction
//!   within 1% and background-eviction increase within 15% on random traces
//!   (the worst case for middle-level utilization).

use serde::{Deserialize, Serialize};

use crate::controller::{OramConfig, PathOram};
use iroram_sim_engine::SimRng;

/// Named allocation strategies from the paper's evaluation (Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocPreset {
    /// Uniform `Z=4` (the Baseline).
    Baseline,
    /// `Z=2` for rel. levels \[0,7), `Z=3` for \[7,10), `Z=4` below — PL=43
    /// at paper scale. Also the integrated IR-ORAM setting.
    IrAlloc1,
    /// `Z=2` for rel. levels \[0,9), `Z=4` below — PL=42 at paper scale.
    IrAlloc2,
    /// `Z=1` for rel. levels \[0,5), `Z=2` for \[5,9) — PL=37 at paper scale.
    IrAlloc3,
    /// `Z=1` for rel. levels \[0,6), `Z=2` for \[6,9) — PL=36 at paper
    /// scale. This is the standalone "IR-Alloc" bar of Fig. 10.
    IrAlloc4,
}

/// A per-level bucket capacity assignment.
///
/// # Examples
///
/// ```
/// use iroram_protocol::ZAllocation;
/// // The paper's IR-Alloc1 at full scale: 25 levels, top 10 cached on-chip.
/// let a = ZAllocation::preset(iroram_protocol::zalloc_preset::IR_ALLOC1, 25, 10);
/// assert_eq!(a.path_len(10), 43);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZAllocation {
    z: Vec<u32>,
}

/// Re-exported preset constants for ergonomic call sites.
pub mod preset_consts {
    pub use super::AllocPreset;
    /// Uniform `Z=4`.
    pub const BASELINE: AllocPreset = AllocPreset::Baseline;
    /// The IR-Alloc1 / integrated IR-ORAM setting.
    pub const IR_ALLOC1: AllocPreset = AllocPreset::IrAlloc1;
    /// The IR-Alloc2 setting.
    pub const IR_ALLOC2: AllocPreset = AllocPreset::IrAlloc2;
    /// The IR-Alloc3 setting.
    pub const IR_ALLOC3: AllocPreset = AllocPreset::IrAlloc3;
    /// The IR-Alloc4 / standalone IR-Alloc setting.
    pub const IR_ALLOC4: AllocPreset = AllocPreset::IrAlloc4;
}

impl ZAllocation {
    /// Uniform allocation: every level gets `z` slots.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `z == 0`.
    pub fn uniform(levels: usize, z: u32) -> Self {
        assert!(levels > 0, "tree needs at least one level");
        assert!(z > 0, "uniform Z must be nonzero");
        ZAllocation {
            z: vec![z; levels],
        }
    }

    /// Explicit per-level capacities.
    ///
    /// # Panics
    ///
    /// Panics if `z` is empty or the leaf level has zero capacity.
    pub fn from_z(z: Vec<u32>) -> Self {
        assert!(!z.is_empty(), "tree needs at least one level");
        assert!(
            *z.last().expect("nonempty") > 0,
            "leaf level must have nonzero capacity"
        );
        ZAllocation { z }
    }

    /// A named paper configuration mapped onto a tree of `levels` levels
    /// with the top `top_cached` levels held on-chip.
    ///
    /// At the paper's scale (`levels=25`, `top_cached=10`) this reproduces
    /// the exact ranges of Section VI; at other scales the range breakpoints
    /// are placed at the same fractions of the memory-resident region
    /// (15 levels at paper scale).
    ///
    /// # Panics
    ///
    /// Panics if `top_cached >= levels`.
    pub fn preset(preset: AllocPreset, levels: usize, top_cached: usize) -> Self {
        assert!(
            top_cached < levels,
            "cannot cache all {levels} levels on-chip"
        );
        let m = levels - top_cached; // memory-resident level count
        // Breakpoints expressed in fifteenths of the memory region, from the
        // paper's L=25/top=10 configuration.
        let frac = |n: usize| (n * m + 7) / 15; // round-half-up of n/15 × m
        let mut z = vec![4u32; levels];
        match preset {
            AllocPreset::Baseline => {}
            AllocPreset::IrAlloc1 => {
                for (i, slot) in z.iter_mut().enumerate().skip(top_cached) {
                    let rel = i - top_cached;
                    if rel < frac(7) {
                        *slot = 2;
                    } else if rel < frac(10) {
                        *slot = 3;
                    }
                }
            }
            AllocPreset::IrAlloc2 => {
                for (i, slot) in z.iter_mut().enumerate().skip(top_cached) {
                    let rel = i - top_cached;
                    if rel < frac(9) {
                        *slot = 2;
                    }
                }
            }
            AllocPreset::IrAlloc3 => {
                for (i, slot) in z.iter_mut().enumerate().skip(top_cached) {
                    let rel = i - top_cached;
                    if rel < frac(5) {
                        *slot = 1;
                    } else if rel < frac(9) {
                        *slot = 2;
                    }
                }
            }
            AllocPreset::IrAlloc4 => {
                for (i, slot) in z.iter_mut().enumerate().skip(top_cached) {
                    let rel = i - top_cached;
                    if rel < frac(6) {
                        *slot = 1;
                    } else if rel < frac(9) {
                        *slot = 2;
                    }
                }
            }
        }
        // Never shrink the leaf level (the paper always keeps Z=4 there).
        if let Some(last) = z.last_mut() {
            *last = 4;
        }
        ZAllocation { z }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.z.len()
    }

    /// Capacity of `level`.
    #[inline]
    pub fn z_of(&self, level: usize) -> u32 {
        self.z[level]
    }

    /// The raw per-level vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.z
    }

    /// Total logical slots.
    pub fn total_slots(&self) -> u64 {
        self.z
            .iter()
            .enumerate()
            .map(|(l, &z)| (1u64 << l) * z as u64)
            .sum()
    }

    /// Blocks per path access from `from_level` down (the paper's PL).
    pub fn path_len(&self, from_level: usize) -> u64 {
        self.z[from_level..].iter().map(|&z| z as u64).sum()
    }

    /// Fraction of slots lost relative to uniform `Z=4` on the same tree.
    pub fn space_reduction(&self) -> f64 {
        let full = ZAllocation::uniform(self.levels(), 4).total_slots();
        1.0 - self.total_slots() as f64 / full as f64
    }

    /// Returns a copy with `level`'s capacity replaced.
    pub fn with_level(&self, level: usize, z: u32) -> Self {
        let mut v = self.z.clone();
        v[level] = z;
        ZAllocation::from_z(v)
    }

    /// The paper's offline greedy `Z`-search (Section IV-B).
    ///
    /// Starting from the baseline, repeatedly lowers the capacity of
    /// memory-resident levels (top-down, never the leaf level) and accepts a
    /// change while (1) total space reduction stays within
    /// `max_space_reduction` and (2) the background-eviction count on a
    /// random trace stays within `(1 + max_bg_increase)` of baseline. The
    /// random trace is the worst case for middle-level utilization, so an
    /// allocation passing here is safe for program traces.
    ///
    /// `probe_cfg` supplies the tree geometry and search workload scale; its
    /// `zalloc` field is ignored.
    pub fn greedy_search(
        probe_cfg: &OramConfig,
        accesses: u64,
        max_space_reduction: f64,
        max_bg_increase: f64,
        seed: u64,
    ) -> GreedySearchOutcome {
        let levels = probe_cfg.levels;
        let top = probe_cfg.treetop.cached_levels();
        let baseline = ZAllocation::uniform(levels, 4);
        let baseline_bg = measure_bg(probe_cfg, &baseline, accesses, seed);
        let budget = ((baseline_bg as f64) * (1.0 + max_bg_increase)).ceil() as u64;

        let mut current = baseline.clone();
        let mut evaluated = 1usize;
        let mut current_bg = baseline_bg;
        // Walk memory levels from the top of the memory region toward the
        // leaves, lowering each as far as constraints allow.
        for level in top..levels - 1 {
            loop {
                let z = current.z_of(level);
                if z <= 1 {
                    break;
                }
                let cand = current.with_level(level, z - 1);
                if cand.space_reduction() > max_space_reduction {
                    break;
                }
                let bg = measure_bg(probe_cfg, &cand, accesses, seed);
                evaluated += 1;
                if bg <= budget {
                    current = cand;
                    current_bg = bg;
                } else {
                    break;
                }
            }
        }
        GreedySearchOutcome {
            chosen: current,
            candidates_evaluated: evaluated,
            baseline_bg_evictions: baseline_bg,
            chosen_bg_evictions: current_bg,
        }
    }
}

/// Result of [`ZAllocation::greedy_search`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreedySearchOutcome {
    /// The allocation the search settled on.
    pub chosen: ZAllocation,
    /// How many candidate allocations were simulated.
    pub candidates_evaluated: usize,
    /// Background evictions of the uniform baseline on the probe trace.
    pub baseline_bg_evictions: u64,
    /// Background evictions of the chosen allocation on the probe trace.
    pub chosen_bg_evictions: u64,
}

fn measure_bg(probe_cfg: &OramConfig, zalloc: &ZAllocation, accesses: u64, seed: u64) -> u64 {
    let mut cfg = probe_cfg.clone();
    cfg.zalloc = zalloc.clone();
    cfg.seed = seed;
    let mut oram = PathOram::new(cfg);
    let mut rng = SimRng::seed_from(seed ^ 0x5eed);
    let n = oram.config().data_blocks;
    for _ in 0..accesses {
        let addr = rng.next_below(n);
        oram.run_access(crate::BlockAddr(addr), None);
    }
    oram.stats().bg_evict_paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_path_lengths() {
        // Section VI-B: PL = 43 / 42 / 37 / 36 for IR-Alloc1..4 at L=25 with
        // the top 10 levels cached.
        let pl = |p| ZAllocation::preset(p, 25, 10).path_len(10);
        assert_eq!(pl(AllocPreset::Baseline), 60);
        assert_eq!(pl(AllocPreset::IrAlloc1), 43);
        assert_eq!(pl(AllocPreset::IrAlloc2), 42);
        assert_eq!(pl(AllocPreset::IrAlloc3), 37);
        assert_eq!(pl(AllocPreset::IrAlloc4), 36);
    }

    #[test]
    fn paper_scale_exact_ranges() {
        let a = ZAllocation::preset(AllocPreset::IrAlloc1, 25, 10);
        for l in 0..10 {
            assert_eq!(a.z_of(l), 4, "cached level {l} untouched");
        }
        for l in 10..=16 {
            assert_eq!(a.z_of(l), 2, "level {l}");
        }
        for l in 17..=19 {
            assert_eq!(a.z_of(l), 3, "level {l}");
        }
        for l in 20..=24 {
            assert_eq!(a.z_of(l), 4, "level {l}");
        }
    }

    #[test]
    fn space_reduction_under_one_percent_at_paper_scale() {
        for p in [
            AllocPreset::IrAlloc1,
            AllocPreset::IrAlloc2,
            AllocPreset::IrAlloc3,
            AllocPreset::IrAlloc4,
        ] {
            let a = ZAllocation::preset(p, 25, 10);
            let red = a.space_reduction();
            assert!(
                red > 0.0 && red < 0.01,
                "{p:?} space reduction {red} out of the paper's <1% band"
            );
        }
    }

    #[test]
    fn scaled_presets_shrink_paths_proportionally() {
        let base = ZAllocation::preset(AllocPreset::Baseline, 17, 7);
        let ir1 = ZAllocation::preset(AllocPreset::IrAlloc1, 17, 7);
        let ir4 = ZAllocation::preset(AllocPreset::IrAlloc4, 17, 7);
        assert!(ir1.path_len(7) < base.path_len(7));
        assert!(ir4.path_len(7) < ir1.path_len(7));
        // Roughly the paper's 43/60 ≈ 0.72 and 36/60 = 0.6 ratios.
        let r1 = ir1.path_len(7) as f64 / base.path_len(7) as f64;
        let r4 = ir4.path_len(7) as f64 / base.path_len(7) as f64;
        assert!((0.6..0.85).contains(&r1), "ratio {r1}");
        assert!((0.5..0.75).contains(&r4), "ratio {r4}");
    }

    #[test]
    fn leaf_level_never_shrinks() {
        for p in [
            AllocPreset::IrAlloc1,
            AllocPreset::IrAlloc2,
            AllocPreset::IrAlloc3,
            AllocPreset::IrAlloc4,
        ] {
            for levels in [10usize, 13, 17, 25] {
                let a = ZAllocation::preset(p, levels, levels / 3);
                assert_eq!(a.z_of(levels - 1), 4, "{p:?} L={levels}");
            }
        }
    }

    #[test]
    fn with_level_is_non_destructive() {
        let a = ZAllocation::uniform(5, 4);
        let b = a.with_level(2, 1);
        assert_eq!(a.z_of(2), 4);
        assert_eq!(b.z_of(2), 1);
        assert_eq!(b.z_of(3), 4);
    }

    #[test]
    #[should_panic(expected = "leaf level")]
    fn rejects_zero_leaf_capacity() {
        let _ = ZAllocation::from_z(vec![4, 0]);
    }

    #[test]
    #[should_panic(expected = "cache all")]
    fn rejects_fully_cached_tree() {
        let _ = ZAllocation::preset(AllocPreset::Baseline, 5, 5);
    }
}
