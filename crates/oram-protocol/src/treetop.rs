//! On-chip tree-top stores: the dedicated cache and IR-Stash's S-Stash.
//!
//! Both the Baseline and IR-ORAM keep the top ten tree levels on-chip
//! (Table I: a 256 KB dedicated cache). The two designs differ in *how the
//! store can be addressed*:
//!
//! * [`DedicatedTreeTop`] — indexed only by tree position (level, bucket),
//!   "invisible to the LLC" (Section IV-C). A request must resolve its
//!   PosMap entry before discovering its block was on-chip all along — the
//!   wasted PosMap traffic IR-Stash eliminates.
//! * [`IrStashTop`] — the double-indexed S-Stash: a set-associative array
//!   indexed by **MD5 of the block address** for LLC-side lookups, plus the
//!   `TT` pointer table that rebuilds the tree structure for ORAM-side path
//!   accesses. The TT index uses the paper's code: skip all-zeros, the root
//!   is `0…01`, and level `l` bucket `b` gets code `(1 << l) | b`.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use iroram_hash::md5_u64;
use iroram_sim_engine::{SnapError, SnapReader, SnapWriter};

use crate::stash::AddrMap;
use crate::{BlockAddr, StoredBlock, TreeLayout};

/// Common interface of the two tree-top stores.
///
/// Levels `[0, cached_levels)` of the logical tree live in the store; the
/// controller routes those levels' bucket reads/writes here instead of to
/// memory.
pub trait TreeTopStore {
    /// Number of cached top levels.
    fn cached_levels(&self) -> usize;

    /// Removes and returns the real blocks of a cached bucket.
    fn take_bucket(&mut self, level: usize, bucket: u64) -> Vec<StoredBlock>;

    /// [`TreeTopStore::take_bucket`] appending into a caller-provided
    /// buffer. Implementations override this so the steady-state read path
    /// moves no heap allocations.
    fn take_bucket_into(&mut self, level: usize, bucket: u64, out: &mut Vec<StoredBlock>) {
        out.extend(self.take_bucket(level, bucket));
    }

    /// Stores `blocks` as the new contents of a cached bucket. Returns the
    /// blocks that could **not** be stored (S-Stash set conflicts); the
    /// caller returns them to the stash ("we skip picking this block for
    /// this round", Section IV-C).
    fn write_bucket(&mut self, level: usize, bucket: u64, blocks: Vec<StoredBlock>)
        -> Vec<StoredBlock>;

    /// [`TreeTopStore::write_bucket`] draining a caller-owned buffer;
    /// rejected blocks are appended to `rejected` instead of returned.
    /// Implementations override this so both vectors keep their capacity
    /// across path accesses.
    fn write_bucket_from(
        &mut self,
        level: usize,
        bucket: u64,
        blocks: &mut Vec<StoredBlock>,
        rejected: &mut Vec<StoredBlock>,
    ) {
        rejected.extend(self.write_bucket(level, bucket, std::mem::take(blocks)));
    }

    /// Non-destructive view of a cached bucket.
    fn peek_bucket(&self, level: usize, bucket: u64) -> Vec<StoredBlock>;

    /// Whether a cached bucket currently holds `addr`. Semantically
    /// `peek_bucket(..).iter().any(|b| b.addr == addr)`, but implementations
    /// override it to scan their storage directly — path probes run this on
    /// every cached level of every access, so it must not allocate.
    fn bucket_contains(&self, level: usize, bucket: u64, addr: BlockAddr) -> bool {
        self.peek_bucket(level, bucket).iter().any(|b| b.addr == addr)
    }

    /// Whether a block could currently be stored into bucket
    /// `(level, bucket)`.
    fn can_accept(&self, level: usize, bucket: u64, block: &StoredBlock) -> bool;

    /// LLC-side lookup by block address. Only the double-indexed S-Stash
    /// supports this; the dedicated cache always reports `None` (it cannot
    /// be searched by address in hardware).
    fn front_probe(&self, addr: BlockAddr) -> Option<usize>;

    /// Mutable access to a front-probed block (for write hits).
    fn front_get_mut(&mut self, addr: BlockAddr) -> Option<&mut StoredBlock>;

    /// Per-cached-level `(used, capacity)`.
    fn occupancy(&self) -> Vec<(u64, u64)>;

    /// Total blocks stored.
    fn total_used(&self) -> u64;

    /// All stored blocks with their coordinates.
    fn blocks(&self) -> Vec<(usize, u64, StoredBlock)>;

    /// Empties the store (context switch), returning every block so the
    /// controller can write them back to their memory locations.
    fn flush(&mut self) -> Vec<(usize, u64, StoredBlock)>;

    /// Deep structural self-check for the audit subsystem: internal indices
    /// must be coherent and every cached bucket within its level's `Z`
    /// bound. Returns a description of the first violation found.
    fn check_coherence(&self) -> Result<(), String> {
        Ok(())
    }

    /// Serializes the store's mutable contents for a checkpoint. Placement
    /// in the S-Stash is history-dependent (set conflicts depend on the
    /// fill order), so implementations write their storage verbatim rather
    /// than re-deriving it from the logical bucket contents.
    fn save_state(&self, w: &mut SnapWriter);

    /// Restores the contents captured by [`TreeTopStore::save_state`] into
    /// a store built from the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on a geometry mismatch; any [`SnapError`] on
    /// truncation.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

fn node_code(level: usize, bucket: u64) -> usize {
    ((1u64 << level) | bucket) as usize
}

/// The dedicated tree-top cache design (Wang et al. \[32\], Baseline here).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DedicatedTreeTop {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    cached_levels: usize,
    /// Bucket storage indexed by the paper's node code.
    buckets: Vec<Vec<StoredBlock>>,
    /// Logical capacity per level.
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    z: Vec<u32>,
}

impl DedicatedTreeTop {
    /// Creates an empty store for the top `cached_levels` of `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `cached_levels` is zero or not below the tree height.
    pub fn new(layout: &TreeLayout, cached_levels: usize) -> Self {
        assert!(
            cached_levels > 0 && cached_levels < layout.levels(),
            "cached levels must be in 1..levels"
        );
        DedicatedTreeTop {
            cached_levels,
            buckets: vec![Vec::new(); 1 << cached_levels],
            z: (0..cached_levels).map(|l| layout.z_of(l)).collect(),
        }
    }
}

impl TreeTopStore for DedicatedTreeTop {
    fn cached_levels(&self) -> usize {
        self.cached_levels
    }

    fn take_bucket(&mut self, level: usize, bucket: u64) -> Vec<StoredBlock> {
        assert!(level < self.cached_levels);
        std::mem::take(&mut self.buckets[node_code(level, bucket)])
    }

    fn take_bucket_into(&mut self, level: usize, bucket: u64, out: &mut Vec<StoredBlock>) {
        assert!(level < self.cached_levels);
        out.append(&mut self.buckets[node_code(level, bucket)]);
    }

    fn write_bucket(
        &mut self,
        level: usize,
        bucket: u64,
        blocks: Vec<StoredBlock>,
    ) -> Vec<StoredBlock> {
        assert!(level < self.cached_levels);
        assert!(
            blocks.len() <= self.z[level] as usize,
            "bucket overflow at level {level}"
        );
        self.buckets[node_code(level, bucket)] = blocks;
        Vec::new()
    }

    fn write_bucket_from(
        &mut self,
        level: usize,
        bucket: u64,
        blocks: &mut Vec<StoredBlock>,
        _rejected: &mut Vec<StoredBlock>,
    ) {
        assert!(level < self.cached_levels);
        assert!(
            blocks.len() <= self.z[level] as usize,
            "bucket overflow at level {level}"
        );
        let slot = &mut self.buckets[node_code(level, bucket)];
        slot.clear();
        slot.append(blocks);
    }

    fn peek_bucket(&self, level: usize, bucket: u64) -> Vec<StoredBlock> {
        self.buckets[node_code(level, bucket)].clone()
    }

    fn bucket_contains(&self, level: usize, bucket: u64, addr: BlockAddr) -> bool {
        self.buckets[node_code(level, bucket)]
            .iter()
            .any(|b| b.addr == addr)
    }

    fn can_accept(&self, level: usize, _bucket: u64, _block: &StoredBlock) -> bool {
        level < self.cached_levels
    }

    fn front_probe(&self, _addr: BlockAddr) -> Option<usize> {
        None // not addressable by block address
    }

    fn front_get_mut(&mut self, _addr: BlockAddr) -> Option<&mut StoredBlock> {
        None
    }

    fn occupancy(&self) -> Vec<(u64, u64)> {
        (0..self.cached_levels)
            .map(|l| {
                let used: u64 = (0..(1u64 << l))
                    .map(|b| self.buckets[node_code(l, b)].len() as u64)
                    .sum();
                (used, (1u64 << l) * self.z[l] as u64)
            })
            .collect()
    }

    fn total_used(&self) -> u64 {
        self.buckets.iter().map(|b| b.len() as u64).sum()
    }

    fn blocks(&self) -> Vec<(usize, u64, StoredBlock)> {
        let mut out = Vec::new();
        for l in 0..self.cached_levels {
            for b in 0..(1u64 << l) {
                for blk in &self.buckets[node_code(l, b)] {
                    out.push((l, b, *blk));
                }
            }
        }
        out
    }

    fn flush(&mut self) -> Vec<(usize, u64, StoredBlock)> {
        let out = self.blocks();
        for b in &mut self.buckets {
            b.clear();
        }
        out
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.buckets.len());
        for b in &self.buckets {
            w.put_usize(b.len());
            for blk in b {
                blk.save_state(w);
            }
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_seq_len(8)?;
        if n != self.buckets.len() {
            return Err(SnapError::Corrupt("tree-top bucket count mismatch"));
        }
        for b in &mut self.buckets {
            let m = r.take_seq_len(StoredBlock::SNAP_BYTES)?;
            b.clear();
            for _ in 0..m {
                b.push(StoredBlock::restore_state(r)?);
            }
        }
        Ok(())
    }

    fn check_coherence(&self) -> Result<(), String> {
        if !self.buckets[0].is_empty() {
            return Err("dedicated tree-top: node code 0 (skip-all-zeros) is occupied".into());
        }
        for l in 0..self.cached_levels {
            for b in 0..(1u64 << l) {
                let len = self.buckets[node_code(l, b)].len();
                if len > self.z[l] as usize {
                    return Err(format!(
                        "dedicated tree-top: bucket L{l}/B{b} holds {len} > Z={}",
                        self.z[l]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct SEntry {
    block: StoredBlock,
    level: u16,
    bucket: u64,
}

/// IR-Stash's S-Stash: a set-associative, double-indexed tree-top store.
///
/// Data entries live in a set-associative array indexed by `MD5(addr)`; the
/// `TT` pointer table maps each cached tree bucket to its (up to `Z`)
/// entries, so ORAM path accesses can gather a bucket without knowing block
/// addresses. A block can be rejected at fill time when its target set is
/// full even though the bucket has room — the structural cost of set
/// associativity that [`TreeTopStore::can_accept`] exposes to the write
/// planner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IrStashTop {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    cached_levels: usize,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    sets: usize,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    ways: usize,
    entries: Vec<Option<SEntry>>,
    /// TT pointer table: node code → entry indices.
    tt: Vec<Vec<u32>>,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    z: Vec<u32>,
    /// Memoized set indices (`addr → MD5(addr) % sets`). The modeled
    /// hardware hashes each address once into its set wiring, but the
    /// software model calls [`IrStashTop::set_of`] on every probe, accept
    /// check and fill — recomputing a full MD5 compression each time
    /// dominated S-Stash scheme runtime. The digest is a pure function of
    /// the address, so caching it cannot change any result.
    // lint: allow(snapshot-drift, memo cache over a pure function of the address; safe to lose)
    set_memo: RefCell<AddrMap<u32>>,
}

impl IrStashTop {
    /// Creates an empty S-Stash of `sets × ways` entries caching the top
    /// `cached_levels` of `layout`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `cached_levels` is not below the
    /// tree height.
    pub fn new(layout: &TreeLayout, cached_levels: usize, sets: usize, ways: usize) -> Self {
        assert!(
            cached_levels > 0 && cached_levels < layout.levels(),
            "cached levels must be in 1..levels"
        );
        assert!(sets > 0 && ways > 0, "S-Stash dimensions must be nonzero");
        IrStashTop {
            cached_levels,
            sets,
            ways,
            entries: vec![None; sets * ways],
            tt: vec![Vec::new(); 1 << cached_levels],
            z: (0..cached_levels).map(|l| layout.z_of(l)).collect(),
            set_memo: RefCell::new(AddrMap::default()),
        }
    }

    /// Total entry capacity (`sets × ways`).
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn set_of(&self, addr: BlockAddr) -> usize {
        *self
            .set_memo
            .borrow_mut()
            .entry(addr.0)
            .or_insert_with(|| (md5_u64(addr.0) % self.sets as u64) as u32) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    fn find_entry(&self, addr: BlockAddr) -> Option<usize> {
        let range = self.set_range(self.set_of(addr));
        (range.start..range.end)
            .find(|&i| self.entries[i].is_some_and(|e| e.block.addr == addr))
    }
}

impl TreeTopStore for IrStashTop {
    fn cached_levels(&self) -> usize {
        self.cached_levels
    }

    fn take_bucket(&mut self, level: usize, bucket: u64) -> Vec<StoredBlock> {
        let mut out = Vec::new();
        self.take_bucket_into(level, bucket, &mut out);
        out
    }

    fn take_bucket_into(&mut self, level: usize, bucket: u64, out: &mut Vec<StoredBlock>) {
        assert!(level < self.cached_levels);
        let code = node_code(level, bucket);
        for i in 0..self.tt[code].len() {
            let p = self.tt[code][i] as usize; // lint: allow(panic, i < tt[code].len() by the loop bound)
            let e = self.entries[p] // lint: allow(panic, TT pointers index into entries by construction)
                .take()
                .expect("TT pointer must reference a live entry");
            out.push(e.block);
        }
        self.tt[code].clear();
    }

    fn write_bucket(
        &mut self,
        level: usize,
        bucket: u64,
        blocks: Vec<StoredBlock>,
    ) -> Vec<StoredBlock> {
        assert!(level < self.cached_levels);
        assert!(
            blocks.len() <= self.z[level] as usize,
            "bucket overflow at level {level}"
        );
        let code = node_code(level, bucket);
        // The caller always takes before writing; any leftover pointers are
        // stale content being replaced.
        for p in std::mem::take(&mut self.tt[code]) {
            self.entries[p as usize] = None;
        }
        let mut rejected = Vec::new();
        for block in blocks {
            let range = self.set_range(self.set_of(block.addr));
            match (range.start..range.end).find(|&i| self.entries[i].is_none()) {
                Some(free) => {
                    self.entries[free] = Some(SEntry {
                        block,
                        level: level as u16,
                        bucket,
                    });
                    self.tt[code].push(free as u32);
                }
                None => rejected.push(block),
            }
        }
        rejected
    }

    fn write_bucket_from(
        &mut self,
        level: usize,
        bucket: u64,
        blocks: &mut Vec<StoredBlock>,
        rejected: &mut Vec<StoredBlock>,
    ) {
        assert!(level < self.cached_levels);
        assert!(
            blocks.len() <= self.z[level] as usize,
            "bucket overflow at level {level}"
        );
        let code = node_code(level, bucket);
        // The caller always takes before writing; any leftover pointers are
        // stale content being replaced. `tt[code]` is cleared in place so
        // its capacity survives the path access.
        for i in 0..self.tt[code].len() {
            let p = self.tt[code][i] as usize;
            self.entries[p] = None;
        }
        self.tt[code].clear();
        for block in blocks.drain(..) {
            let range = self.set_range(self.set_of(block.addr));
            match (range.start..range.end).find(|&i| self.entries[i].is_none()) {
                Some(free) => {
                    self.entries[free] = Some(SEntry {
                        block,
                        level: level as u16,
                        bucket,
                    });
                    self.tt[code].push(free as u32);
                }
                None => rejected.push(block),
            }
        }
    }

    fn peek_bucket(&self, level: usize, bucket: u64) -> Vec<StoredBlock> {
        self.tt[node_code(level, bucket)]
            .iter()
            .map(|&p| {
                self.entries[p as usize]
                    .expect("TT pointer must reference a live entry")
                    .block
            })
            .collect()
    }

    fn bucket_contains(&self, level: usize, bucket: u64, addr: BlockAddr) -> bool {
        self.tt[node_code(level, bucket)].iter().any(|&p| {
            self.entries[p as usize]
                .expect("TT pointer must reference a live entry")
                .block
                .addr
                == addr
        })
    }

    fn can_accept(&self, level: usize, _bucket: u64, block: &StoredBlock) -> bool {
        if level >= self.cached_levels {
            return false;
        }
        let range = self.set_range(self.set_of(block.addr));
        self.entries[range].iter().any(Option::is_none)
    }

    fn front_probe(&self, addr: BlockAddr) -> Option<usize> {
        self.find_entry(addr)
            .map(|i| self.entries[i].expect("found entry").level as usize)
    }

    fn front_get_mut(&mut self, addr: BlockAddr) -> Option<&mut StoredBlock> {
        let i = self.find_entry(addr)?;
        self.entries[i].as_mut().map(|e| &mut e.block)
    }

    fn occupancy(&self) -> Vec<(u64, u64)> {
        let mut used = vec![0u64; self.cached_levels];
        for e in self.entries.iter().flatten() {
            used[e.level as usize] += 1;
        }
        (0..self.cached_levels)
            .map(|l| (used[l], (1u64 << l) * self.z[l] as u64))
            .collect()
    }

    fn total_used(&self) -> u64 {
        self.entries.iter().flatten().count() as u64
    }

    fn blocks(&self) -> Vec<(usize, u64, StoredBlock)> {
        self.entries
            .iter()
            .flatten()
            .map(|e| (e.level as usize, e.bucket, e.block))
            .collect()
    }

    fn flush(&mut self) -> Vec<(usize, u64, StoredBlock)> {
        let out = self.blocks();
        self.entries.iter_mut().for_each(|e| *e = None);
        self.tt.iter_mut().for_each(Vec::clear);
        out
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            match e {
                None => w.put_u8(0),
                Some(e) => {
                    w.put_u8(1);
                    e.block.save_state(w);
                    w.put_u32(u32::from(e.level));
                    w.put_u64(e.bucket);
                }
            }
        }
        w.put_usize(self.tt.len());
        for ptrs in &self.tt {
            w.put_usize(ptrs.len());
            for &p in ptrs {
                w.put_u32(p);
            }
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_seq_len(1)?;
        if n != self.entries.len() {
            return Err(SnapError::Corrupt("S-Stash entry count mismatch"));
        }
        for e in &mut self.entries {
            *e = match r.take_u8()? {
                0 => None,
                1 => {
                    let block = StoredBlock::restore_state(r)?;
                    let level = u16::try_from(r.take_u32()?)
                        .map_err(|_| SnapError::Corrupt("S-Stash level exceeds u16"))?;
                    let bucket = r.take_u64()?;
                    Some(SEntry {
                        block,
                        level,
                        bucket,
                    })
                }
                _ => return Err(SnapError::Corrupt("bad S-Stash entry tag")),
            };
        }
        let n = r.take_seq_len(8)?;
        if n != self.tt.len() {
            return Err(SnapError::Corrupt("S-Stash TT table size mismatch"));
        }
        let cap = self.entries.len() as u32;
        for ptrs in &mut self.tt {
            let m = r.take_seq_len(4)?;
            ptrs.clear();
            for _ in 0..m {
                let p = r.take_u32()?;
                if p >= cap {
                    return Err(SnapError::Corrupt("S-Stash TT pointer out of range"));
                }
                ptrs.push(p);
            }
        }
        Ok(())
    }

    fn check_coherence(&self) -> Result<(), String> {
        if !self.tt[0].is_empty() {
            return Err("S-Stash: node code 0 (skip-all-zeros) has TT pointers".into());
        }
        let mut refs = vec![0u32; self.entries.len()];
        for (code, ptrs) in self.tt.iter().enumerate().skip(1) {
            // Invert the paper's node code: level = ⌊log2 code⌋,
            // bucket = the remaining low bits.
            let level = (usize::BITS - 1 - code.leading_zeros()) as usize;
            let bucket = (code - (1 << level)) as u64;
            if ptrs.is_empty() {
                continue;
            }
            if level >= self.cached_levels {
                return Err(format!(
                    "S-Stash: TT code {code} (level {level}) beyond cached levels"
                ));
            }
            if ptrs.len() > self.z[level] as usize {
                return Err(format!(
                    "S-Stash: bucket L{level}/B{bucket} has {} TT pointers > Z={}",
                    ptrs.len(),
                    self.z[level]
                ));
            }
            for &p in ptrs {
                let Some(e) = self.entries.get(p as usize).copied().flatten() else {
                    return Err(format!(
                        "S-Stash: TT pointer L{level}/B{bucket}→{p} references a dead entry"
                    ));
                };
                if (e.level as usize, e.bucket) != (level, bucket) {
                    return Err(format!(
                        "S-Stash: entry {p} tagged L{}/B{} but pointed to by L{level}/B{bucket}",
                        e.level, e.bucket
                    ));
                }
                if !self.set_range(self.set_of(e.block.addr)).contains(&(p as usize)) {
                    return Err(format!(
                        "S-Stash: entry {p} ({}) outside its MD5-indexed set",
                        e.block.addr
                    ));
                }
                refs[p as usize] += 1;
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            match (e.is_some(), refs[i]) {
                (true, 1) | (false, 0) => {}
                (true, n) => {
                    return Err(format!("S-Stash: live entry {i} has {n} TT references"));
                }
                (false, n) => {
                    return Err(format!("S-Stash: free entry {i} has {n} TT references"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Leaf, ZAllocation};

    fn layout() -> TreeLayout {
        TreeLayout::new(ZAllocation::uniform(6, 4))
    }

    fn blk(addr: u64, leaf: u64) -> StoredBlock {
        StoredBlock {
            addr: BlockAddr(addr),
            leaf: Leaf(leaf),
            payload: addr,
        }
    }

    #[test]
    fn node_codes_match_paper() {
        // Root is 0…01; level-by-level continuation.
        assert_eq!(node_code(0, 0), 1);
        assert_eq!(node_code(1, 0), 2);
        assert_eq!(node_code(1, 1), 3);
        assert_eq!(node_code(2, 0), 4);
        assert_eq!(node_code(2, 3), 7);
    }

    #[test]
    fn dedicated_round_trip() {
        let l = layout();
        let mut top = DedicatedTreeTop::new(&l, 3);
        assert_eq!(top.cached_levels(), 3);
        let rejected = top.write_bucket(2, 3, vec![blk(1, 28), blk(2, 31)]);
        assert!(rejected.is_empty());
        assert_eq!(top.peek_bucket(2, 3).len(), 2);
        assert_eq!(top.total_used(), 2);
        let got = top.take_bucket(2, 3);
        assert_eq!(got.len(), 2);
        assert_eq!(top.total_used(), 0);
    }

    #[test]
    fn dedicated_has_no_front_door() {
        let l = layout();
        let mut top = DedicatedTreeTop::new(&l, 3);
        top.write_bucket(0, 0, vec![blk(9, 0)]);
        assert_eq!(top.front_probe(BlockAddr(9)), None);
        assert!(top.front_get_mut(BlockAddr(9)).is_none());
    }

    #[test]
    fn dedicated_occupancy_and_flush() {
        let l = layout();
        let mut top = DedicatedTreeTop::new(&l, 2);
        top.write_bucket(0, 0, vec![blk(1, 0)]);
        top.write_bucket(1, 1, vec![blk(2, 16), blk(3, 24)]);
        assert_eq!(top.occupancy(), vec![(1, 4), (2, 8)]);
        let flushed = top.flush();
        assert_eq!(flushed.len(), 3);
        assert_eq!(top.total_used(), 0);
    }

    #[test]
    fn irstash_round_trip_via_tt() {
        let l = layout();
        let mut top = IrStashTop::new(&l, 3, 8, 4);
        let rejected = top.write_bucket(2, 1, vec![blk(10, 8), blk(11, 9)]);
        assert!(rejected.is_empty());
        assert_eq!(top.peek_bucket(2, 1).len(), 2);
        let got = top.take_bucket(2, 1);
        assert_eq!(got.len(), 2);
        assert_eq!(top.total_used(), 0);
        assert!(top.peek_bucket(2, 1).is_empty());
    }

    #[test]
    fn irstash_front_door_finds_blocks() {
        let l = layout();
        let mut top = IrStashTop::new(&l, 3, 8, 4);
        top.write_bucket(1, 0, vec![blk(42, 0)]);
        assert_eq!(top.front_probe(BlockAddr(42)), Some(1));
        assert_eq!(top.front_probe(BlockAddr(43)), None);
        top.front_get_mut(BlockAddr(42)).unwrap().payload = 777;
        assert_eq!(top.peek_bucket(1, 0)[0].payload, 777);
    }

    #[test]
    fn irstash_rejects_on_set_conflict() {
        let l = layout();
        // One set, one way: the second block to that set must be rejected.
        let mut top = IrStashTop::new(&l, 3, 1, 1);
        let b1 = blk(1, 0);
        let b2 = blk(2, 0);
        assert!(top.can_accept(0, 0, &b1));
        let rej = top.write_bucket(0, 0, vec![b1, b2]);
        assert_eq!(rej.len(), 1);
        assert!(!top.can_accept(1, 0, &b2), "full set must refuse");
        assert_eq!(top.total_used(), 1);
    }

    #[test]
    fn irstash_write_replaces_stale_bucket() {
        let l = layout();
        let mut top = IrStashTop::new(&l, 3, 8, 4);
        top.write_bucket(2, 2, vec![blk(1, 21)]);
        top.write_bucket(2, 2, vec![blk(2, 20)]);
        let got = top.peek_bucket(2, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].addr, BlockAddr(2));
        assert_eq!(top.total_used(), 1, "stale entry must be freed");
        assert_eq!(top.front_probe(BlockAddr(1)), None);
    }

    #[test]
    fn irstash_occupancy_per_level() {
        let l = layout();
        let mut top = IrStashTop::new(&l, 2, 16, 4);
        top.write_bucket(0, 0, vec![blk(1, 0), blk(2, 17)]);
        top.write_bucket(1, 1, vec![blk(3, 16)]);
        assert_eq!(top.occupancy(), vec![(2, 4), (1, 8)]);
    }

    #[test]
    fn irstash_flush_reports_coordinates() {
        let l = layout();
        let mut top = IrStashTop::new(&l, 2, 16, 4);
        top.write_bucket(1, 1, vec![blk(3, 16)]);
        let flushed = top.flush();
        assert_eq!(flushed, vec![(1, 1, blk(3, 16))]);
        assert_eq!(top.total_used(), 0);
        assert_eq!(top.front_probe(BlockAddr(3)), None);
    }

    #[test]
    fn irstash_capacity() {
        let l = layout();
        let top = IrStashTop::new(&l, 3, 8, 4);
        assert_eq!(top.capacity(), 32);
    }

    #[test]
    fn bucket_contains_matches_peek_for_both_stores() {
        let l = layout();
        let mut ded = DedicatedTreeTop::new(&l, 3);
        ded.write_bucket(2, 3, vec![blk(1, 28), blk(2, 31)]);
        let mut ir = IrStashTop::new(&l, 3, 8, 4);
        ir.write_bucket(2, 3, vec![blk(1, 28), blk(2, 31)]);
        for top in [&ded as &dyn TreeTopStore, &ir as &dyn TreeTopStore] {
            for addr in [1u64, 2, 3] {
                assert_eq!(
                    top.bucket_contains(2, 3, BlockAddr(addr)),
                    top.peek_bucket(2, 3).iter().any(|b| b.addr == BlockAddr(addr)),
                    "bucket_contains diverged from peek_bucket for addr {addr}"
                );
            }
            assert!(!top.bucket_contains(2, 2, BlockAddr(1)), "wrong bucket");
        }
    }

    #[test]
    fn save_restore_round_trips_both_stores() {
        let l = layout();
        let mut ded = DedicatedTreeTop::new(&l, 3);
        ded.write_bucket(2, 3, vec![blk(1, 28), blk(2, 31)]);
        let mut ir = IrStashTop::new(&l, 3, 8, 4);
        ir.write_bucket(2, 1, vec![blk(10, 8), blk(11, 9)]);
        ir.write_bucket(0, 0, vec![blk(3, 4)]);

        let mut w = SnapWriter::new();
        ded.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut ded2 = DedicatedTreeTop::new(&l, 3);
        let mut r = SnapReader::new(&bytes);
        ded2.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(ded2.blocks(), ded.blocks());
        ded2.check_coherence().unwrap();

        let mut w = SnapWriter::new();
        ir.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut ir2 = IrStashTop::new(&l, 3, 8, 4);
        let mut r = SnapReader::new(&bytes);
        ir2.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        // Placement (which entry slot each block occupies) must survive
        // verbatim — the front door and TT views agree with the original.
        assert_eq!(ir2.blocks(), ir.blocks());
        assert_eq!(ir2.front_probe(BlockAddr(10)), ir.front_probe(BlockAddr(10)));
        assert_eq!(ir2.peek_bucket(2, 1), ir.peek_bucket(2, 1));
        ir2.check_coherence().unwrap();
    }

    #[test]
    fn irstash_restore_rejects_out_of_range_pointer() {
        let l = layout();
        let mut ir = IrStashTop::new(&l, 3, 8, 4);
        ir.write_bucket(1, 0, vec![blk(42, 0)]);
        let mut w = SnapWriter::new();
        ir.save_state(&mut w);
        let bytes = w.into_bytes();
        // A smaller store: the serialized entry count cannot match.
        let mut tiny = IrStashTop::new(&l, 3, 2, 2);
        let mut r = SnapReader::new(&bytes);
        assert!(tiny.restore_state(&mut r).is_err());
    }

    #[test]
    fn coherence_check_accepts_sound_stores() {
        let l = layout();
        let mut ded = DedicatedTreeTop::new(&l, 3);
        ded.write_bucket(2, 3, vec![blk(1, 28), blk(2, 31)]);
        ded.check_coherence().unwrap();
        let mut ir = IrStashTop::new(&l, 3, 8, 4);
        ir.write_bucket(2, 1, vec![blk(10, 8), blk(11, 9)]);
        ir.write_bucket(0, 0, vec![blk(3, 4)]);
        ir.check_coherence().unwrap();
    }

    #[test]
    fn coherence_check_catches_dangling_tt_pointer() {
        let l = layout();
        let mut ir = IrStashTop::new(&l, 3, 8, 4);
        ir.write_bucket(1, 0, vec![blk(42, 0)]);
        // Corrupt: kill the entry but leave its TT pointer behind.
        let p = ir.tt[node_code(1, 0)][0] as usize;
        ir.entries[p] = None;
        let err = ir.check_coherence().unwrap_err();
        assert!(err.contains("dead entry"), "{err}");
    }

    #[test]
    fn coherence_check_catches_leaked_entry() {
        let l = layout();
        let mut ir = IrStashTop::new(&l, 3, 8, 4);
        ir.write_bucket(1, 0, vec![blk(42, 0)]);
        // Corrupt: drop the TT pointer but keep the entry alive.
        ir.tt[node_code(1, 0)].clear();
        let err = ir.check_coherence().unwrap_err();
        assert!(err.contains("0 TT references"), "{err}");
    }

    #[test]
    fn coherence_check_catches_mistagged_entry() {
        let l = layout();
        let mut ir = IrStashTop::new(&l, 3, 8, 4);
        ir.write_bucket(1, 1, vec![blk(42, 16)]);
        let p = ir.tt[node_code(1, 1)][0] as usize;
        ir.entries[p].as_mut().unwrap().bucket = 0;
        let err = ir.check_coherence().unwrap_err();
        assert!(err.contains("tagged"), "{err}");
    }

    #[test]
    fn coherence_check_catches_dedicated_overflow() {
        let l = layout();
        let mut ded = DedicatedTreeTop::new(&l, 3);
        ded.write_bucket(0, 0, vec![blk(1, 0), blk(2, 17)]);
        // Corrupt past the Z bound behind the store's back.
        ded.buckets[node_code(0, 0)].extend([blk(3, 1), blk(4, 2), blk(5, 3)]);
        let err = ded.check_coherence().unwrap_err();
        assert!(err.contains("> Z="), "{err}");
    }
}
