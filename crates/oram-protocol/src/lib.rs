//! Functional (untimed) Path ORAM protocol with the IR-ORAM extensions.
//!
//! This crate implements the complete Path ORAM state machine of the paper
//! — Stefanov et al.'s protocol \[27\] with Freecursive recursion \[8\],
//! background eviction \[25\], tree-top caching \[22\]\[32\], and the
//! IR-ORAM additions (IR-Alloc per-level bucket sizing and the IR-Stash
//! double-indexed sub-stash) — *without* timing. Every path access the
//! protocol performs is reported as a [`PathRecord`]; the timed simulator in
//! the `ir-oram` crate replays those records against the DRAM model at the
//! fixed one-path-per-`T`-cycles rate that defends the timing channel.
//!
//! Keeping protocol semantics separate from timing lets the same state
//! machine drive both billion-access utilization studies (paper Figs. 3, 4,
//! 6, 13) and cycle-level performance runs (Figs. 2, 10–16), and makes the
//! protocol invariants (every block exists exactly once; every block lies on
//! its assigned path) directly property-testable.
//!
//! # Examples
//!
//! ```
//! use iroram_protocol::{OramConfig, PathOram};
//!
//! let mut oram = PathOram::new(OramConfig::tiny());
//! oram.write(3, 0xAB);
//! assert_eq!(oram.read(3), 0xAB);
//! oram.check_invariants().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod invariants;
mod layout;
mod posmap;
mod stash;
mod treetop;
mod tree;
mod types;
mod zalloc;

pub use controller::{
    AccessBatch, AccessError, AccessRecord, OramConfig, PathOram, ProtocolStats, RemapPolicy,
    TreeTopMode, WriteOp,
};
pub use invariants::InvariantError;
pub use layout::TreeLayout;
pub use posmap::{AddressSpace, PlbStatus, PosMapSystem, ENTRIES_PER_BLOCK};
pub use stash::{Stash, WritebackPlan};
pub use tree::{IntegrityStats, OramTree};
pub use treetop::{DedicatedTreeTop, IrStashTop, TreeTopStore};
pub use types::{BlockAddr, BlockKind, Leaf, PathList, PathRecord, PathType, ServedFrom, StoredBlock};
pub use zalloc::preset_consts as zalloc_preset;
pub use zalloc::{AllocPreset, GreedySearchOutcome, ZAllocation};
