//! The Path ORAM controller state machine.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use iroram_cache::CacheConfig;
use iroram_hash::FeistelCipher;
use iroram_sim_engine::{SimRng, SnapError, SnapReader, SnapWriter};

use crate::posmap::PlbStatus;
use crate::treetop::{DedicatedTreeTop, IrStashTop, TreeTopStore};
use crate::{
    AddressSpace, BlockAddr, BlockKind, Leaf, OramTree, PathList, PathRecord, PathType,
    PosMapSystem,
    ServedFrom, Stash, StoredBlock, TreeLayout, WritebackPlan, ZAllocation,
};

/// Which tree-top store (if any) the controller uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeTopMode {
    /// No on-chip tree top: every path access touches all levels in memory.
    None,
    /// The Baseline's dedicated tree-top cache: top `levels` levels
    /// on-chip, indexed only by tree position (invisible to the LLC).
    Dedicated {
        /// Cached top levels (the paper uses 10).
        levels: usize,
    },
    /// IR-Stash: the double-indexed S-Stash caching the top `levels`
    /// levels, LLC-addressable by block address.
    IrStash {
        /// Cached top levels.
        levels: usize,
        /// S-Stash sets.
        sets: usize,
        /// S-Stash ways (the paper chose 4-way set associative).
        ways: usize,
    },
}

impl TreeTopMode {
    /// Number of on-chip top levels (0 for `None`).
    pub fn cached_levels(&self) -> usize {
        match *self {
            TreeTopMode::None => 0,
            TreeTopMode::Dedicated { levels } | TreeTopMode::IrStash { levels, .. } => levels,
        }
    }

    /// An IR-Stash mode sized to hold the top `levels` of a `Z=4` tree in a
    /// 4-way S-Stash with a small amount of slack.
    pub fn ir_stash_sized(levels: usize) -> Self {
        let slots = ((1usize << levels) - 1) * 4;
        TreeTopMode::IrStash {
            levels,
            sets: (slots / 4).next_power_of_two(),
            ways: 4,
        }
    }
}

/// A rejected block access: the caller asked the protocol for something its
/// escrow/translation state cannot serve. These used to be controller
/// panics; surfacing them as values lets the timed controllers propagate
/// them as a typed `SimError` instead of aborting the whole experiment
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// The address has no PosMap mapping — it is escrowed (delayed remap
    /// discards the mapping at access time; front stores must serve it) or
    /// was never part of the address space.
    Unmapped(BlockAddr),
    /// [`PathOram::delayed_insert_block`] was asked to re-insert a block
    /// that is not in the escrow.
    NotEscrowed(BlockAddr),
    /// [`PathOram::delayed_insert_block`] was called under a remap policy
    /// other than [`RemapPolicy::Delayed`] (there is no escrow to drain).
    WrongPolicy(BlockAddr),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Unmapped(a) => write!(
                f,
                "block {:#x} is unmapped (escrowed blocks are served by front_access)",
                a.0
            ),
            AccessError::NotEscrowed(a) => {
                write!(f, "block {:#x} is not escrowed", a.0)
            }
            AccessError::WrongPolicy(a) => write!(
                f,
                "delayed insert of block {:#x} needs the delayed remap policy",
                a.0
            ),
        }
    }
}

impl std::error::Error for AccessError {}

/// When accessed blocks get remapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemapPolicy {
    /// Standard Path ORAM: remap at access time; the tree keeps a copy while
    /// the LLC holds the line (dirty evictions issue a write access).
    Immediate,
    /// Delayed remapping (Nagarajan et al. \[23\], the paper's "LLC-D"):
    /// the mapping is discarded at access time and the block leaves the
    /// ORAM; it is re-inserted (with PosMap traffic) when the LLC evicts it
    /// — clean *or* dirty.
    Delayed,
}

/// Configuration of a [`PathOram`] instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OramConfig {
    /// Tree levels `L` (root = level 0).
    pub levels: usize,
    /// Number of user data blocks protected (PosMap blocks are added on top
    /// inside the merged tree).
    pub data_blocks: u64,
    /// Per-level bucket capacities.
    pub zalloc: ZAllocation,
    /// Tree-top store.
    pub treetop: TreeTopMode,
    /// Soft stash capacity (Table I: 200 entries).
    pub stash_capacity: usize,
    /// PLB geometry: sets.
    pub plb_sets: usize,
    /// PLB geometry: ways.
    pub plb_ways: usize,
    /// Remap policy.
    pub remap: RemapPolicy,
    /// Cap on background-eviction paths drained after one access.
    pub max_bg_evicts_per_access: usize,
    /// Store payloads encrypted in the tree (Feistel permutation).
    pub encrypt_payloads: bool,
    /// IRO-style integrity layer: maintain per-bucket checksums and verify
    /// every memory bucket on path read, repairing detected corruption
    /// (modelled re-fetch). With this off, injected corruption flows into
    /// the stash undetected.
    pub integrity: bool,
    /// RNG seed; equal seeds give bit-identical protocol behaviour.
    pub seed: u64,
}

impl OramConfig {
    /// A tiny configuration for unit tests and doc examples: 8 levels,
    /// 256 data blocks, top 3 levels in a dedicated cache.
    pub fn tiny() -> Self {
        OramConfig {
            levels: 8,
            data_blocks: 256,
            zalloc: ZAllocation::uniform(8, 4),
            treetop: TreeTopMode::Dedicated { levels: 3 },
            stash_capacity: 64,
            plb_sets: 4,
            plb_ways: 2,
            remap: RemapPolicy::Immediate,
            max_bg_evicts_per_access: 8,
            encrypt_payloads: true,
            integrity: true,
            seed: 0xC0FFEE,
        }
    }

    /// The scaled default experiment configuration: a 17-level tree
    /// protecting 2^18 data blocks (the paper's L=25 / 2^26-block setup
    /// shrunk 256×, keeping the ~52% space utilization and the proportions
    /// of memory-resident levels), top 7 levels cached.
    pub fn scaled_default() -> Self {
        let levels = 17;
        OramConfig {
            levels,
            data_blocks: 1u64 << (levels + 1),
            zalloc: ZAllocation::uniform(levels, 4),
            treetop: TreeTopMode::Dedicated { levels: 7 },
            stash_capacity: 200,
            plb_sets: 16,
            plb_ways: 4,
            remap: RemapPolicy::Immediate,
            max_bg_evicts_per_access: 8,
            encrypt_payloads: false,
            integrity: true,
            seed: 0xC0FFEE,
        }
    }

    /// Total blocks (data + PosMap) stored in the merged tree.
    pub fn total_blocks(&self) -> u64 {
        AddressSpace::new(self.data_blocks).total_blocks()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a description if the configuration is inconsistent
    /// (allocation height mismatch, cached levels out of range, or a tree
    /// too small for the block population).
    pub fn validate(&self) {
        assert!(self.levels >= 2, "tree needs at least two levels");
        assert_eq!(
            self.zalloc.levels(),
            self.levels,
            "allocation height must match tree height"
        );
        let cached = self.treetop.cached_levels();
        assert!(cached < self.levels, "cannot cache every level on-chip");
        let capacity = self.zalloc.total_slots() + self.stash_capacity as u64;
        assert!(
            self.total_blocks() <= capacity,
            "{} blocks cannot fit {} slots",
            self.total_blocks(),
            capacity
        );
    }
}

/// Protocol-level statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolStats {
    /// Logical accesses served via [`PathOram::run_access`].
    pub accesses: u64,
    /// Served directly from F-Stash (no path, no PosMap).
    pub fstash_hits: u64,
    /// Served from S-Stash by address (IR-Stash front door).
    pub sstash_hits: u64,
    /// Served from escrow (delayed-remap block held by the LLC).
    pub escrow_hits: u64,
    /// Served from the tree top after PosMap resolution (no memory path).
    pub treetop_hits: u64,
    /// `PT_p` paths for PosMap₁ blocks.
    pub pos1_paths: u64,
    /// `PT_p` paths for PosMap₂ blocks.
    pub pos2_paths: u64,
    /// `PT_d` paths.
    pub data_paths: u64,
    /// Background-eviction paths.
    pub bg_evict_paths: u64,
    /// Dummy (`PT_m`) paths issued for timing protection.
    pub dummy_paths: u64,
    /// Where requested blocks were found: one counter per tree level.
    pub served_level: Vec<u64>,
    /// Requested blocks found already in the stash.
    pub served_stash: u64,
    /// Blocks read from memory (path read phases).
    pub blocks_from_memory: u64,
    /// Blocks written to memory (path write phases).
    pub blocks_to_memory: u64,
    /// Write-phase blocks bounced off full S-Stash sets.
    pub sstash_rejects: u64,
    /// Delayed-remap re-insertions.
    pub delayed_inserts: u64,
}

impl ProtocolStats {
    /// All path accesses of any type.
    pub fn total_paths(&self) -> u64 {
        self.pos1_paths + self.pos2_paths + self.data_paths + self.bg_evict_paths
            + self.dummy_paths
    }

    /// PosMap (`PT_p`) paths.
    pub fn posmap_paths(&self) -> u64 {
        self.pos1_paths + self.pos2_paths
    }
}

/// The outcome of one logical access (or sub-operation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// Path accesses performed, in order.
    pub paths: PathList,
    /// Where the requested block was found.
    pub served: ServedFrom,
    /// The block's payload value (before any write of this access).
    pub payload: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RemapAction {
    Remap,
    UnmapEscrow,
}

/// How an access updates the requested block's payload.
///
/// The controller reads the block wherever it is found (stash, tree top,
/// tree) and applies the operation to the payload in place — so a
/// read-modify-write (the KV layer's packed-entry update) costs exactly one
/// ORAM access instead of a dependent read-then-write pair.
pub enum WriteOp<'a> {
    /// Read only: the payload is untouched.
    None,
    /// Unconditional overwrite with the given value.
    Set(u64),
    /// Compute the new payload from the current one; returning `None`
    /// leaves the block unchanged (still a full, externally indistinguishable
    /// access).
    With(&'a mut dyn FnMut(u64) -> u64),
}

impl WriteOp<'_> {
    /// The payload the block holds after this operation, given it currently
    /// holds `cur`.
    fn apply(&mut self, cur: u64) -> u64 {
        match self {
            WriteOp::None => cur,
            WriteOp::Set(v) => *v,
            WriteOp::With(f) => f(cur),
        }
    }
}

impl From<Option<u64>> for WriteOp<'_> {
    fn from(w: Option<u64>) -> Self {
        match w {
            None => WriteOp::None,
            Some(v) => WriteOp::Set(v),
        }
    }
}

/// The functional Path ORAM controller.
///
/// See the [crate docs](crate) for the role split between this state machine
/// and the timed simulator. All behaviour is deterministic given the
/// configuration seed.
///
/// # Examples
///
/// ```
/// use iroram_protocol::{OramConfig, PathOram};
/// let mut oram = PathOram::new(OramConfig::tiny());
/// oram.write(7, 1234);
/// let rec = oram.run_access(iroram_protocol::BlockAddr(7), None);
/// assert_eq!(rec.payload, 1234);
/// ```
pub struct PathOram {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    cfg: OramConfig,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    layout: TreeLayout,
    tree: OramTree,
    stash: Stash,
    posmap: PosMapSystem,
    top: Option<Box<dyn TreeTopStore + Send>>,
    escrow: BTreeMap<u64, u64>,
    // lint: allow(snapshot-drift, keyed at construction from the seed; stateless per block)
    cipher: FeistelCipher,
    rng: SimRng,
    stats: ProtocolStats,
    // Hot-loop scratch reused across path accesses (never logical state).
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    plan: WritebackPlan,
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    read_buf: Vec<StoredBlock>,
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    pay_buf: Vec<u64>,
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    bounds: Vec<usize>,
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    rej_buf: Vec<StoredBlock>,
}

impl std::fmt::Debug for PathOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathOram")
            .field("levels", &self.cfg.levels)
            .field("data_blocks", &self.cfg.data_blocks)
            .field("stash_len", &self.stash.len())
            .field("accesses", &self.stats.accesses)
            .finish_non_exhaustive()
    }
}

impl PathOram {
    /// Builds the ORAM and initializes it the way the paper does: every
    /// block (data and PosMap) is "accessed once in a random order",
    /// remapped, and written into the tree, so level-utilization snapshots
    /// start from the paper's "0B" state. Statistics are zeroed afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`OramConfig::validate`]).
    pub fn new(cfg: OramConfig) -> Self {
        cfg.validate();
        let layout = TreeLayout::new(cfg.zalloc.clone());
        let mut rng = SimRng::seed_from(cfg.seed);
        let space = AddressSpace::new(cfg.data_blocks);
        let posmap = PosMapSystem::new(
            space,
            layout.num_leaves(),
            CacheConfig::new(cfg.plb_sets, cfg.plb_ways),
            &mut rng,
        );
        let top: Option<Box<dyn TreeTopStore + Send>> = match cfg.treetop {
            TreeTopMode::None => None,
            TreeTopMode::Dedicated { levels } => {
                Some(Box::new(DedicatedTreeTop::new(&layout, levels)))
            }
            TreeTopMode::IrStash { levels, sets, ways } => {
                Some(Box::new(IrStashTop::new(&layout, levels, sets, ways)))
            }
        };
        let tree = OramTree::new(layout.clone());
        let mut oram = PathOram {
            cipher: FeistelCipher::new(cfg.seed ^ 0x0BAD_5EED),
            tree,
            stash: Stash::new(cfg.stash_capacity),
            posmap,
            top,
            escrow: BTreeMap::new(),
            rng,
            plan: WritebackPlan::new(),
            read_buf: Vec::new(),
            pay_buf: Vec::new(),
            bounds: Vec::new(),
            rej_buf: Vec::new(),
            stats: ProtocolStats {
                served_level: vec![0; cfg.levels],
                ..ProtocolStats::default()
            },
            layout,
            cfg,
        };
        oram.initialize();
        // Checksums are derived data: enabling integrity before init would
        // re-sum every touched bucket across the ~N initialization paths.
        // One O(total-slots) pass over the populated tree yields the same
        // sums (they are recomputed from slot contents; the rng stream and
        // statistics are untouched, so reports cannot change).
        oram.tree.set_integrity(oram.cfg.integrity);
        oram
    }

    /// Paper-style initialization: place every block via one path access in
    /// a random order.
    fn initialize(&mut self) {
        let total = self.posmap.space().total_blocks();
        let mut order: Vec<u64> = (0..total).collect();
        self.rng.shuffle(&mut order);
        for addr in order {
            let leaf = self
                .posmap
                .leaf_of(BlockAddr(addr))
                .expect("all blocks mapped at init");
            self.stash.insert(StoredBlock {
                addr: BlockAddr(addr),
                leaf,
                payload: self.encrypt_at_rest(0),
            });
            self.path_access(leaf, None, PathType::BgEvict, RemapAction::Remap, &mut WriteOp::None);
            let mut guard = 0;
            // lint: allow(secret-flow, init-time background-eviction drain, before any measured access stream)
            while self.stash.over_capacity() && guard < 32 {
                let l = self.random_leaf();
                self.path_access(l, None, PathType::BgEvict, RemapAction::Remap, &mut WriteOp::None);
                guard += 1;
            }
        }
        self.reset_stats();
    }

    // Payloads are stored in the clear inside the stash/top (on-chip); the
    // value inserted at init is plaintext 0. This helper exists so the init
    // payload matches whatever `read` will later report for untouched
    // blocks.
    fn encrypt_at_rest(&self, v: u64) -> u64 {
        v
    }

    /// The configuration.
    pub fn config(&self) -> &OramConfig {
        &self.cfg
    }

    /// The tree layout.
    pub fn layout(&self) -> &TreeLayout {
        &self.layout
    }

    /// Protocol statistics since the last reset.
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// Zeroes the statistics, including the PLB hit/miss counters (keeps
    /// protocol state).
    pub fn reset_stats(&mut self) {
        self.stats = ProtocolStats {
            served_level: vec![0; self.cfg.levels],
            ..ProtocolStats::default()
        };
        self.posmap.plb_hits = 0;
        self.posmap.plb_misses = 0;
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Stash high-water mark.
    pub fn stash_peak(&self) -> usize {
        self.stash.max_occupancy()
    }

    /// The PLB hit/miss counters `(hits, misses)`.
    pub fn plb_counters(&self) -> (u64, u64) {
        (self.posmap.plb_hits, self.posmap.plb_misses)
    }

    /// A uniformly random leaf (for dummy paths).
    pub fn random_leaf(&mut self) -> Leaf {
        Leaf(self.rng.next_below(self.layout.num_leaves()))
    }

    // ------------------------------------------------------------------
    // Convenience API (functional experiments, examples, tests)
    // ------------------------------------------------------------------

    /// Reads data block `addr`, driving the whole protocol.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data block address.
    pub fn read(&mut self, addr: u64) -> u64 {
        self.run_access(BlockAddr(addr), None).payload
    }

    /// Writes `payload` to data block `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data block address.
    pub fn write(&mut self, addr: u64, payload: u64) {
        self.run_access(BlockAddr(addr), Some(payload));
    }

    /// Performs one complete logical access (front probe, PosMap
    /// resolution, data path, background eviction) immediately, returning
    /// everything the timed simulator would have spread over path slots.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data block address.
    pub fn run_access(&mut self, addr: BlockAddr, write: Option<u64>) -> AccessRecord {
        let mut op = WriteOp::from(write);
        let rec = self.run_access_op(addr, &mut op);
        self.finish_access(rec)
    }

    /// Like [`PathOram::run_access`], but the new payload is computed from
    /// the current one by `update` — a read-modify-write in one access.
    /// Returning the input unchanged makes this a plain read; either way the
    /// externally visible path traffic is identical.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data block address.
    pub fn run_access_with(
        &mut self,
        addr: BlockAddr,
        mut update: impl FnMut(u64) -> u64,
    ) -> AccessRecord {
        let mut op = WriteOp::With(&mut update);
        let rec = self.run_access_op(addr, &mut op);
        self.finish_access(rec)
    }

    /// Opens a batched access session: accesses submitted through it defer
    /// background-eviction drains to [`AccessBatch::finish`], amortizing the
    /// stash write-back planning the drain performs across the whole batch.
    pub fn batch(&mut self) -> AccessBatch<'_> {
        AccessBatch { oram: self, ops: 0 }
    }

    /// The complete logical access minus the trailing background-eviction
    /// drain (shared by [`PathOram::run_access`] and [`AccessBatch`]).
    fn run_access_op(&mut self, addr: BlockAddr, write: &mut WriteOp<'_>) -> AccessRecord {
        assert_eq!(
            self.posmap.space().kind_of(addr),
            BlockKind::Data,
            "run_access takes data addresses"
        );
        self.stats.accesses += 1;
        if let Some((served, payload)) = self.front_access_op(addr, write) {
            return AccessRecord {
                paths: PathList::new(),
                served,
                payload,
            };
        }
        let mut paths = PathList::new();
        for pm in self.posmap_resolve(addr) {
            let rec = self.fetch_posmap_block(pm);
            paths.extend(rec.paths);
        }
        let data = self
            .block_access(addr, PathType::Data, self.data_remap_action(), write)
            .expect("run_access serves escrowed blocks via front_access");
        let served = data.served;
        let payload = data.payload;
        paths.extend(data.paths.iter().copied());
        AccessRecord {
            paths,
            served,
            payload,
        }
    }

    /// Appends the per-access background-eviction drain to `rec`.
    fn finish_access(&mut self, mut rec: AccessRecord) -> AccessRecord {
        rec.paths.extend(self.drain_bg());
        rec
    }

    fn data_remap_action(&self) -> RemapAction {
        match self.cfg.remap {
            RemapPolicy::Immediate => RemapAction::Remap,
            RemapPolicy::Delayed => RemapAction::UnmapEscrow,
        }
    }

    // ------------------------------------------------------------------
    // Stepwise API (timed simulator)
    // ------------------------------------------------------------------

    /// Checks the on-chip front stores — F-Stash always; the escrow under
    /// delayed remapping; S-Stash (by block address) under IR-Stash. A hit
    /// serves the access with **no** path access, PosMap traffic, or remap.
    pub fn front_access(
        &mut self,
        addr: BlockAddr,
        write: Option<u64>,
    ) -> Option<(ServedFrom, u64)> {
        self.front_access_op(addr, &mut WriteOp::from(write))
    }

    fn front_access_op(
        &mut self,
        addr: BlockAddr,
        write: &mut WriteOp<'_>,
    ) -> Option<(ServedFrom, u64)> {
        if let Some(b) = self.stash.get_mut(addr) {
            let payload = b.payload;
            b.payload = write.apply(payload);
            self.stats.fstash_hits += 1;
            return Some((ServedFrom::FStash, payload));
        }
        if let Some(p) = self.escrow.get_mut(&addr.0) {
            let payload = *p;
            *p = write.apply(payload);
            self.stats.escrow_hits += 1;
            return Some((ServedFrom::Escrow, payload));
        }
        if matches!(self.cfg.treetop, TreeTopMode::IrStash { .. }) {
            let top = self.top.as_mut().expect("IrStash mode has a top store");
            if let Some(b) = top.front_get_mut(addr) {
                let payload = b.payload;
                b.payload = write.apply(payload);
                self.stats.sstash_hits += 1;
                return Some((ServedFrom::SStash, payload));
            }
        }
        None
    }

    /// Non-perturbing PLB status for `addr` (IR-DWB's `Stage` computation).
    pub fn posmap_status(&self, addr: BlockAddr) -> PlbStatus {
        self.posmap.plb_status(addr)
    }

    /// Performs the PLB lookups for `addr` and returns the PosMap blocks
    /// that must be fetched (outermost first).
    pub fn posmap_resolve(&mut self, addr: BlockAddr) -> Vec<BlockAddr> {
        self.posmap.resolve(addr)
    }

    /// Fetches one PosMap block through the ORAM (a `PT_p` path — unless it
    /// is found on-chip) and fills the PLB with it.
    ///
    /// # Panics
    ///
    /// Panics if `pm_addr` is a data address.
    pub fn fetch_posmap_block(&mut self, pm_addr: BlockAddr) -> AccessRecord {
        let ptype = match self.posmap.space().kind_of(pm_addr) {
            BlockKind::PosMap1 => PathType::Pos1,
            BlockKind::PosMap2 => PathType::Pos2,
            BlockKind::Data => panic!("fetch_posmap_block takes PosMap addresses"),
        };
        let rec = self
            .block_access(pm_addr, ptype, RemapAction::Remap, &mut WriteOp::None)
            .expect("PosMap blocks are always mapped (never escrowed)");
        self.posmap.plb_fill(pm_addr);
        rec
    }

    /// Accesses the data block itself. Requires translation to be complete
    /// (PosMap resolved). May return zero paths when the block is found in
    /// the tree-top store or stash.
    ///
    /// # Errors
    ///
    /// [`AccessError::Unmapped`] if `addr` has no PosMap mapping (escrowed
    /// blocks are served by [`PathOram::front_access`]).
    pub fn data_access(
        &mut self,
        addr: BlockAddr,
        write: Option<u64>,
    ) -> Result<AccessRecord, AccessError> {
        let action = self.data_remap_action();
        self.block_access(addr, PathType::Data, action, &mut WriteOp::from(write))
    }

    /// Whether the stash is over capacity (background eviction required).
    pub fn bg_evict_pending(&self) -> bool {
        self.stash.over_capacity()
    }

    /// Issues one background-eviction path to a random leaf.
    pub fn bg_evict_once(&mut self) -> PathRecord {
        let leaf = self.random_leaf();
        self.path_access(leaf, None, PathType::BgEvict, RemapAction::Remap, &mut WriteOp::None)
            .0
    }

    /// Issues one dummy path (timing protection). Like every real path it
    /// reads and rewrites a random path, so it also drains the stash — the
    /// effect the paper notes when comparing background-eviction counts with
    /// and without timing protection (Section VI-A).
    pub fn dummy_path(&mut self) -> PathRecord {
        let leaf = self.random_leaf();
        self.path_access(leaf, None, PathType::Dummy, RemapAction::Remap, &mut WriteOp::None)
            .0
    }

    /// Drains background evictions (up to the configured per-access cap).
    pub fn drain_bg(&mut self) -> Vec<PathRecord> {
        let mut out = Vec::new();
        while self.bg_evict_pending() && out.len() < self.cfg.max_bg_evicts_per_access {
            out.push(self.bg_evict_once());
        }
        out
    }

    /// Re-inserts an escrowed block into the ORAM (delayed-remap LLC
    /// eviction). The caller must have resolved the PosMap first (the
    /// paper's "it demands PosMap accesses at write-back time"). No path
    /// access happens here — the block enters the stash with a fresh leaf
    /// and sinks on later paths.
    ///
    /// # Errors
    ///
    /// [`AccessError::WrongPolicy`] if the policy is not delayed,
    /// [`AccessError::NotEscrowed`] if the block is not escrowed.
    pub fn delayed_insert_block(&mut self, addr: BlockAddr) -> Result<(), AccessError> {
        if self.cfg.remap != RemapPolicy::Delayed {
            return Err(AccessError::WrongPolicy(addr));
        }
        let payload = self
            .escrow
            .remove(&addr.0)
            .ok_or(AccessError::NotEscrowed(addr))?;
        let leaf = self.posmap.remap(addr, &mut self.rng);
        self.stash.insert(StoredBlock {
            addr,
            leaf,
            payload,
        });
        self.stats.delayed_inserts += 1;
        Ok(())
    }

    /// Full delayed write-back convenience (PosMap resolution + insertion),
    /// returning the PosMap paths it generated.
    ///
    /// # Errors
    ///
    /// Propagates [`PathOram::delayed_insert_block`]'s errors.
    pub fn delayed_writeback(&mut self, addr: BlockAddr) -> Result<AccessRecord, AccessError> {
        let mut paths = PathList::new();
        for pm in self.posmap_resolve(addr) {
            paths.extend(self.fetch_posmap_block(pm).paths);
        }
        self.delayed_insert_block(addr)?;
        paths.extend(self.drain_bg());
        Ok(AccessRecord {
            paths,
            served: ServedFrom::Escrow,
            payload: 0,
        })
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Per-level `(used, capacity)` merging the tree-top store with the
    /// in-memory tree (the paper's space-utilization metric, Figs. 3/13).
    pub fn utilization_per_level(&self) -> Vec<(u64, u64)> {
        let mut occ = self.tree.occupancy();
        if let Some(top) = &self.top {
            for (level, pair) in top.occupancy().into_iter().enumerate() {
                occ[level] = pair;
            }
        }
        occ
    }

    /// Direct access to the tree (tests, invariants).
    pub fn tree(&self) -> &OramTree {
        &self.tree
    }

    /// Integrity-layer counters (injected / detected / recovered /
    /// undetected corruptions).
    pub fn integrity_stats(&self) -> crate::IntegrityStats {
        self.tree.integrity_stats()
    }

    /// Injects a storage fault: XORs `mask` into the payload stored in slot
    /// `slot` of memory bucket `(level, bucket)` (fault-injection surface
    /// for the robustness harness; `level` must be a memory level, below
    /// any on-chip tree top).
    pub fn inject_tree_fault(&mut self, level: usize, bucket: u64, slot: u32, mask: u64) {
        self.tree.inject_fault(level, bucket, slot, mask);
    }

    /// Direct access to the stash.
    pub fn stash(&self) -> &Stash {
        &self.stash
    }

    /// The position-map subsystem.
    pub fn posmap(&self) -> &PosMapSystem {
        &self.posmap
    }

    /// The tree-top store, if configured.
    pub fn treetop_store(&self) -> Option<&(dyn TreeTopStore + Send)> {
        self.top.as_deref()
    }

    /// Addresses currently escrowed (delayed remap).
    pub fn escrowed(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.escrow.keys().map(|&a| BlockAddr(a))
    }

    /// Whether `addr` is currently escrowed (held by the LLC under the
    /// delayed-remap policy).
    pub fn is_escrowed(&self, addr: BlockAddr) -> bool {
        self.escrow.contains_key(&addr.0)
    }

    /// Decrypts an in-tree payload (for tests and invariant checks that
    /// look at raw tree contents).
    pub fn decrypt_payload(&self, v: u64) -> u64 {
        if self.cfg.encrypt_payloads {
            self.cipher.decrypt(v)
        } else {
            v
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Serializes the complete logical protocol state for a checkpoint:
    /// tree, stash, PosMap (+PLB), tree-top store, escrow, RNG stream, and
    /// statistics. The cipher, layout, and hot-loop scratch are derived
    /// from the configuration and are not written.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.tree.save_state(w);
        self.stash.save_state(w);
        self.posmap.save_state(w);
        match &self.top {
            None => w.put_u8(0),
            Some(top) => {
                w.put_u8(1);
                top.save_state(w);
            }
        }
        w.put_usize(self.escrow.len());
        for (&addr, &payload) in &self.escrow {
            w.put_u64(addr);
            w.put_u64(payload);
        }
        for s in self.rng.state() {
            w.put_u64(s);
        }
        let st = &self.stats;
        w.put_u64(st.accesses);
        w.put_u64(st.fstash_hits);
        w.put_u64(st.sstash_hits);
        w.put_u64(st.escrow_hits);
        w.put_u64(st.treetop_hits);
        w.put_u64(st.pos1_paths);
        w.put_u64(st.pos2_paths);
        w.put_u64(st.data_paths);
        w.put_u64(st.bg_evict_paths);
        w.put_u64(st.dummy_paths);
        w.put_usize(st.served_level.len());
        for &v in &st.served_level {
            w.put_u64(v);
        }
        w.put_u64(st.served_stash);
        w.put_u64(st.blocks_from_memory);
        w.put_u64(st.blocks_to_memory);
        w.put_u64(st.sstash_rejects);
        w.put_u64(st.delayed_inserts);
    }

    /// Restores the state written by [`PathOram::save_state`] into this
    /// instance, which must have been built from the same configuration.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on truncation, or [`SnapError::Corrupt`] when the
    /// snapshot disagrees with this instance's geometry (tree size, tree-top
    /// mode, PosMap size, escrow ordering, per-level counter count).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.tree.restore_state(r)?;
        self.stash.restore_state(r)?;
        self.posmap.restore_state(r)?;
        let top_tag = r.take_u8()?;
        match (&mut self.top, top_tag) {
            (None, 0) => {}
            (Some(top), 1) => top.restore_state(r)?,
            _ => return Err(SnapError::Corrupt("tree-top presence mismatch")),
        }
        let n = r.take_seq_len(16)?;
        self.escrow.clear();
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let addr = r.take_u64()?;
            if prev.is_some_and(|p| p >= addr) {
                return Err(SnapError::Corrupt("escrow entries out of order"));
            }
            prev = Some(addr);
            self.escrow.insert(addr, r.take_u64()?);
        }
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.take_u64()?;
        }
        self.rng = SimRng::from_state(rng_state);
        let st = &mut self.stats;
        st.accesses = r.take_u64()?;
        st.fstash_hits = r.take_u64()?;
        st.sstash_hits = r.take_u64()?;
        st.escrow_hits = r.take_u64()?;
        st.treetop_hits = r.take_u64()?;
        st.pos1_paths = r.take_u64()?;
        st.pos2_paths = r.take_u64()?;
        st.data_paths = r.take_u64()?;
        st.bg_evict_paths = r.take_u64()?;
        st.dummy_paths = r.take_u64()?;
        let levels = r.take_seq_len(8)?;
        if levels != st.served_level.len() {
            return Err(SnapError::Corrupt("served-level counter count mismatch"));
        }
        for v in st.served_level.iter_mut() {
            *v = r.take_u64()?;
        }
        st.served_stash = r.take_u64()?;
        st.blocks_from_memory = r.take_u64()?;
        st.blocks_to_memory = r.take_u64()?;
        st.sstash_rejects = r.take_u64()?;
        st.delayed_inserts = r.take_u64()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// One block-targeted ORAM access: stash check, tree-top probe, then a
    /// full path access.
    fn block_access(
        &mut self,
        addr: BlockAddr,
        ptype: PathType,
        action: RemapAction,
        write: &mut WriteOp<'_>,
    ) -> Result<AccessRecord, AccessError> {
        // The ORAM controller always searches the stash first.
        if self.stash.contains(addr) {
            return self.serve_from_stash(addr, action, write);
        }
        // IR-Stash: the S-Stash is indexed by block address, so *any* block
        // — including PosMap₁/₂ blocks, whose reuse is 16× denser than data
        // — can be found on-chip before any translation. This is the heart
        // of the PT_p reduction: a PosMap block served here costs no path
        // and needs no PosMap₂ lookup of its own.
        if matches!(self.cfg.treetop, TreeTopMode::IrStash { .. }) {
            let probed = self
                .top
                .as_ref()
                .expect("IrStash mode has a top store")
                .front_probe(addr);
            if let Some(level) = probed {
                let b = self
                    .top
                    .as_mut()
                    .expect("checked")
                    .front_get_mut(addr)
                    .expect("probe found it");
                let payload = b.payload;
                b.payload = write.apply(payload);
                self.stats.sstash_hits += 1;
                // lint: allow(secret-flow, stats bucket index; an on-chip S-Stash hit issues no memory traffic at any level)
                self.stats.served_level[level] += 1;
                return Ok(AccessRecord {
                    paths: PathList::new(),
                    served: ServedFrom::SStash,
                    payload,
                });
            }
        }
        let leaf = self
            .posmap
            .leaf_of(addr)
            .ok_or(AccessError::Unmapped(addr))?;
        // Tree-top probe: with top levels on-chip, the controller checks
        // them before generating any memory traffic ("we will not start
        // off-chip memory accesses until we know if the requested block is
        // in the on-chip sub-stashes", Section IV-E). A hit needs no path
        // access and no remap.
        if self.top.is_some() {
            // lint: allow(secret-flow, tree-top probe gate, Section IV-E: the on-chip check deciding whether any off-chip access starts is the modeled IR-ORAM mechanism itself)
            if let Some((level, payload)) = self.top_path_probe(leaf, addr, write) {
                self.stats.treetop_hits += 1;
                // lint: allow(secret-flow, stats bucket index; an on-chip tree-top hit issues no memory traffic at any level)
                self.stats.served_level[level] += 1;
                return Ok(AccessRecord {
                    paths: PathList::new(),
                    served: ServedFrom::TreeTop { level },
                    payload,
                });
            }
        }
        let (rec, served, payload) = self.path_access(leaf, Some(addr), ptype, action, write);
        Ok(AccessRecord {
            paths: PathList::one(rec),
            served: served.expect("targeted path access reports a source"),
            payload,
        })
    }

    fn serve_from_stash(
        &mut self,
        addr: BlockAddr,
        action: RemapAction,
        write: &mut WriteOp<'_>,
    ) -> Result<AccessRecord, AccessError> {
        self.stats.served_stash += 1;
        self.stats.fstash_hits += 1;
        let payload = match action {
            RemapAction::Remap => {
                let Some(b) = self.stash.get_mut(addr) else {
                    return Err(AccessError::Unmapped(addr));
                };
                let payload = b.payload;
                b.payload = write.apply(payload);
                payload
            }
            RemapAction::UnmapEscrow => {
                let Some(b) = self.stash.take(addr) else {
                    return Err(AccessError::Unmapped(addr));
                };
                self.posmap.unmap(addr);
                self.escrow.insert(addr.0, write.apply(b.payload));
                b.payload
            }
        };
        Ok(AccessRecord {
            paths: PathList::new(),
            served: ServedFrom::FStash,
            payload,
        })
    }

    /// Probes the on-chip top portion of the path to `leaf` for `addr`;
    /// serves it in place on a hit (no remap, per the dedicated-cache
    /// design \[32\]).
    fn top_path_probe(
        &mut self,
        leaf: Leaf,
        addr: BlockAddr,
        write: &mut WriteOp<'_>,
    ) -> Option<(usize, u64)> {
        let cached = self.top.as_ref().map_or(0, |t| t.cached_levels());
        for level in 0..cached {
            let bucket = self.layout.bucket_on_path(leaf, level);
            let top = self.top.as_mut().expect("probed only when present");
            if !top.bucket_contains(level, bucket, addr) {
                continue;
            }
            // Serve in place through the controller scratch buffers: the
            // take/write round-trip reuses their capacity, so a tree-top
            // hit allocates nothing.
            let mut blocks = std::mem::take(&mut self.read_buf);
            let mut rejected = std::mem::take(&mut self.rej_buf);
            blocks.clear();
            rejected.clear();
            top.take_bucket_into(level, bucket, &mut blocks);
            let mut payload = 0;
            for b in &mut blocks {
                if b.addr == addr {
                    payload = b.payload;
                    b.payload = write.apply(payload);
                }
            }
            top.write_bucket_from(level, bucket, &mut blocks, &mut rejected);
            debug_assert!(
                rejected.is_empty(),
                "re-writing a bucket's own contents must fit"
            );
            for r in rejected.drain(..) {
                self.stash.insert(r);
            }
            self.read_buf = blocks;
            self.rej_buf = rejected;
            return Some((level, payload));
        }
        None
    }

    /// The full read–serve–remap–write path access.
    ///
    /// Returns the path record plus, for targeted accesses, where the block
    /// was found and its (pre-write) payload.
    fn path_access(
        &mut self,
        leaf: Leaf,
        target: Option<BlockAddr>,
        ptype: PathType,
        action: RemapAction,
        write: &mut WriteOp<'_>,
    ) -> (PathRecord, Option<ServedFrom>, u64) {
        match ptype {
            PathType::Pos1 => self.stats.pos1_paths += 1,
            PathType::Pos2 => self.stats.pos2_paths += 1,
            PathType::Data => self.stats.data_paths += 1,
            PathType::BgEvict => self.stats.bg_evict_paths += 1,
            PathType::Dummy => self.stats.dummy_paths += 1,
            PathType::DwbConverted => {}
        }
        let levels = self.cfg.levels;
        let cached = self.top.as_ref().map_or(0, |t| t.cached_levels());

        // --- Read phase: pull the whole path into the stash. ---
        // `read_buf` is controller-owned scratch: taking it out and putting
        // it back keeps its capacity across path accesses, so memory levels
        // are read without allocating.
        let mut read_buf = std::mem::take(&mut self.read_buf);
        let mut found_level: Option<usize> = None;
        read_buf.clear();
        for level in 0..cached {
            let bucket = self.layout.bucket_on_path(leaf, level);
            let start = read_buf.len();
            self.top
                .as_mut()
                .expect("cached levels imply a top store")
                .take_bucket_into(level, bucket, &mut read_buf);
            if let Some(addr) = target {
                // lint: allow(panic, start was read_buf.len() before the append)
                if read_buf[start..].iter().any(|b| b.addr == addr) {
                    found_level = Some(level);
                }
            }
        }
        // One merged insert for the whole cached segment: the stash is
        // keyed by address, so batch order cannot change its contents.
        self.stash.insert_batch(&mut read_buf);
        // Integrity layer: verify the whole path's checksums up front, before
        // any of its contents are trusted; detected corruption is repaired
        // (re-fetch) and the timing layer charges the penalty. Buckets on the
        // path are level-distinct, so one hoisted pass performs exactly the
        // per-level verifications the read loop used to interleave.
        self.tree.verify_and_repair_path(leaf, cached);
        // Gather every memory bucket into one buffer, recording per-level
        // boundaries so the serve attribution below survives the batching,
        // then run payload decryption through the slice kernel instead of
        // block-at-a-time.
        read_buf.clear();
        let mut bounds = std::mem::take(&mut self.bounds);
        bounds.clear();
        for level in cached..levels {
            let bucket = self.layout.bucket_on_path(leaf, level);
            bounds.push(read_buf.len());
            self.tree.take_bucket_into(level, bucket, &mut read_buf);
        }
        bounds.push(read_buf.len());
        if self.cfg.encrypt_payloads {
            let mut pay = std::mem::take(&mut self.pay_buf);
            pay.clear();
            pay.extend(read_buf.iter().map(|b| b.payload));
            self.cipher.decrypt_slice(&mut pay);
            for (b, &p) in read_buf.iter_mut().zip(&pay) {
                b.payload = p;
            }
            self.pay_buf = pay;
        }
        if let Some(addr) = target {
            for (i, w) in bounds.windows(2).enumerate() {
                // lint: allow(panic, windows(2) yields pairs; bounds entries are read_buf lengths recorded above, so the range is in bounds)
                if read_buf[w[0]..w[1]].iter().any(|b| b.addr == addr) {
                    found_level = Some(cached + i);
                }
            }
        }
        // Batch merge (sorts and clears `read_buf`; the per-level order is
        // no longer needed once attribution above has run).
        self.stash.insert_batch(&mut read_buf);
        self.bounds = bounds;
        self.read_buf = read_buf;
        self.stats.blocks_from_memory += self.layout.path_len_memory(cached);

        // --- Serve + remap phase (before the write phase, so payload
        //     updates and unmapping are reflected in what gets written). ---
        let mut served = None;
        let mut payload_out = 0;
        if let Some(addr) = target {
            served = Some(match found_level {
                Some(level) => {
                    self.stats.served_level[level] += 1;
                    if level < cached {
                        ServedFrom::TreeTop { level }
                    } else {
                        ServedFrom::Tree { level }
                    }
                }
                None => {
                    // Pre-existing stash resident (raced in via an earlier
                    // path): legal, counts as a stash serve.
                    self.stats.served_stash += 1;
                    ServedFrom::FStash
                }
            });
            match action {
                RemapAction::Remap => {
                    let new_leaf = self.posmap.remap(addr, &mut self.rng);
                    let b = self
                        .stash
                        .get_mut(addr)
                        .expect("target must be resident after the read phase");
                    payload_out = b.payload;
                    b.payload = write.apply(payload_out);
                    b.leaf = new_leaf;
                }
                RemapAction::UnmapEscrow => {
                    let b = self
                        .stash
                        .take(addr)
                        .expect("target must be resident after the read phase");
                    self.posmap.unmap(addr);
                    payload_out = b.payload;
                    self.escrow.insert(addr.0, write.apply(b.payload));
                }
            }
        }

        // --- Write phase: push stash blocks as deep as possible. ---
        // The plan is controller-owned scratch too: its per-level vectors
        // are refilled in place and drained below, so steady-state write
        // phases reallocate nothing.
        let mut plan = std::mem::take(&mut self.plan);
        let top_ref = self.top.as_deref();
        self.stash
            .plan_writeback_into(
                &self.layout,
                leaf,
                0,
                |level, b| {
                    if level < cached {
                        // Bucket identity is irrelevant to both stores' accept
                        // check (S-Stash keys on the block address).
                        top_ref
                            .expect("cached levels imply a top store")
                            .can_accept(level, 0, b)
                    } else {
                        true
                    }
                },
                &mut plan,
            );
        if self.cfg.encrypt_payloads {
            // Batch-encrypt every memory-bound payload through the slice
            // kernel before the write loop; encryption is a per-block
            // permutation, so order does not matter.
            let mut pay = std::mem::take(&mut self.pay_buf);
            pay.clear();
            for level in cached..plan.len() {
                pay.extend(plan.level_mut(level).iter().map(|b| b.payload));
            }
            self.cipher.encrypt_slice(&mut pay);
            let mut i = 0;
            for level in cached..plan.len() {
                for b in plan.level_mut(level).iter_mut() {
                    // lint: allow(panic, pay holds exactly one payload per memory-level plan block, gathered in this same iteration order)
                    b.payload = pay[i];
                    i += 1;
                }
            }
            self.pay_buf = pay;
        }
        let mut rej_buf = std::mem::take(&mut self.rej_buf);
        for level in 0..plan.len() {
            let bucket = self.layout.bucket_on_path(leaf, level);
            if level < cached {
                rej_buf.clear();
                self.top
                    .as_mut()
                    .expect("cached levels imply a top store")
                    .write_bucket_from(level, bucket, plan.level_mut(level), &mut rej_buf);
                self.stats.sstash_rejects += rej_buf.len() as u64;
                for r in rej_buf.drain(..) {
                    self.stash.insert(r);
                }
            } else {
                self.tree.write_bucket_from(level, bucket, plan.level_mut(level));
            }
        }
        self.rej_buf = rej_buf;
        self.plan = plan;
        self.stats.blocks_to_memory += self.layout.path_len_memory(cached);

        (PathRecord { leaf, ptype }, served, payload_out)
    }
}

/// A batched access session over a [`PathOram`].
///
/// Every access submitted through the batch performs its front probe,
/// PosMap resolution, and data path immediately — but the trailing
/// background-eviction drain (and the stash write-back planning it repeats)
/// is deferred to [`AccessBatch::finish`], which drains once for the whole
/// batch under the same per-access cap. Submitting `n` accesses and
/// finishing is therefore protocol-equivalent to `n` bare accesses with the
/// drains reordered to the end; the stash soft capacity absorbs the
/// intra-batch growth.
///
/// # Examples
///
/// ```
/// use iroram_protocol::{BlockAddr, OramConfig, PathOram};
/// let mut oram = PathOram::new(OramConfig::tiny());
/// let mut batch = oram.batch();
/// batch.access(BlockAddr(3), Some(7));
/// let payload = batch.access(BlockAddr(3), None).payload;
/// let bg_paths = batch.finish();
/// assert_eq!(payload, 7);
/// assert!(bg_paths.len() <= 2 * 8);
/// ```
pub struct AccessBatch<'a> {
    oram: &'a mut PathOram,
    ops: usize,
}

impl AccessBatch<'_> {
    /// One logical access (read, or overwrite with `write`), without the
    /// per-access background-eviction drain.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data block address.
    pub fn access(&mut self, addr: BlockAddr, write: Option<u64>) -> AccessRecord {
        self.ops += 1;
        self.oram.run_access_op(addr, &mut WriteOp::from(write))
    }

    /// One logical read-modify-write access: the block's new payload is
    /// computed from its current one by `update` (see
    /// [`PathOram::run_access_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data block address.
    pub fn access_with(
        &mut self,
        addr: BlockAddr,
        mut update: impl FnMut(u64) -> u64,
    ) -> AccessRecord {
        self.ops += 1;
        self.oram.run_access_op(addr, &mut WriteOp::With(&mut update))
    }

    /// Accesses submitted so far.
    pub fn len(&self) -> usize {
        self.ops
    }

    /// Whether no access has been submitted yet.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }

    /// Drains background evictions for the whole batch — up to the same
    /// per-access cap the unbatched path enforces, summed over the batch —
    /// and returns the eviction paths performed.
    pub fn finish(self) -> Vec<PathRecord> {
        let cap = self.ops * self.oram.cfg.max_bg_evicts_per_access;
        let mut out = Vec::new();
        while self.oram.bg_evict_pending() && out.len() < cap {
            out.push(self.oram.bg_evict_once());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_with(treetop: TreeTopMode, remap: RemapPolicy) -> PathOram {
        let cfg = OramConfig {
            treetop,
            remap,
            ..OramConfig::tiny()
        };
        PathOram::new(cfg)
    }

    #[test]
    fn read_your_writes_all_modes() {
        for treetop in [
            TreeTopMode::None,
            TreeTopMode::Dedicated { levels: 3 },
            TreeTopMode::IrStash {
                levels: 3,
                sets: 8,
                ways: 4,
            },
        ] {
            for remap in [RemapPolicy::Immediate, RemapPolicy::Delayed] {
                let mut oram = tiny_with(treetop, remap);
                for a in 0..64u64 {
                    oram.write(a, a * 7 + 1);
                }
                for a in 0..64u64 {
                    assert_eq!(oram.read(a), a * 7 + 1, "{treetop:?} {remap:?} addr {a}");
                }
            }
        }
    }

    #[test]
    fn untouched_blocks_read_zero() {
        let mut oram = PathOram::new(OramConfig::tiny());
        assert_eq!(oram.read(42), 0);
    }

    #[test]
    fn accesses_generate_paths_and_stats() {
        let mut oram = PathOram::new(OramConfig::tiny());
        let mut total_paths = 0usize;
        for a in 0..128u64 {
            let rec = oram.run_access(BlockAddr(a % 256), None);
            total_paths += rec.paths.len();
        }
        assert!(total_paths > 0, "cold accesses must generate path traffic");
        let s = oram.stats();
        assert_eq!(s.accesses, 128);
        assert_eq!(
            s.total_paths() as usize, total_paths,
            "stats must agree with returned records"
        );
    }

    #[test]
    fn posmap_misses_cost_extra_paths() {
        let mut oram = PathOram::new(OramConfig::tiny());
        // First touch of a cold region: PLB cold → Pos2+Pos1+Data possible.
        let rec = oram.run_access(BlockAddr(0), None);
        let n_cold = rec.paths.len();
        // Immediately touching a sibling under the same PosMap1 block can
        // only need the data path (PLB now warm), unless served on-chip.
        let rec2 = oram.run_access(BlockAddr(1), None);
        assert!(rec2.paths.len() <= 1 + oram.config().max_bg_evicts_per_access);
        assert!(n_cold >= rec2.paths.len());
    }

    #[test]
    fn dummy_and_bg_paths_have_types() {
        let mut oram = PathOram::new(OramConfig::tiny());
        let d = oram.dummy_path();
        assert_eq!(d.ptype, PathType::Dummy);
        let b = oram.bg_evict_once();
        assert_eq!(b.ptype, PathType::BgEvict);
        assert_eq!(oram.stats().dummy_paths, 1);
        assert_eq!(oram.stats().bg_evict_paths, 1);
    }

    #[test]
    fn delayed_policy_escrows_and_reinserts() {
        let mut oram = tiny_with(TreeTopMode::Dedicated { levels: 3 }, RemapPolicy::Delayed);
        oram.write(5, 99);
        // After the access the block is escrowed (unmapped).
        assert!(oram.escrowed().any(|a| a == BlockAddr(5)));
        assert!(!oram.posmap().is_mapped(BlockAddr(5)));
        // A re-access hits the escrow with no paths.
        let rec = oram.run_access(BlockAddr(5), None);
        assert_eq!(rec.served, ServedFrom::Escrow);
        assert_eq!(rec.payload, 99);
        assert!(rec.paths.is_empty());
        // LLC evicts it: write-back re-inserts with a fresh mapping.
        oram.delayed_writeback(BlockAddr(5)).unwrap();
        assert!(oram.posmap().is_mapped(BlockAddr(5)));
        assert!(!oram.escrowed().any(|a| a == BlockAddr(5)));
        assert_eq!(oram.read(5), 99);
    }

    /// The documented escrow misuses are typed errors, not panics: a
    /// delayed insert of a non-escrowed block, a delayed insert under the
    /// immediate policy, and a data access to an unmapped (escrowed) block.
    #[test]
    fn escrow_misuse_is_a_typed_error() {
        let mut oram = tiny_with(TreeTopMode::Dedicated { levels: 3 }, RemapPolicy::Delayed);
        assert_eq!(
            oram.delayed_insert_block(BlockAddr(5)),
            Err(AccessError::NotEscrowed(BlockAddr(5)))
        );
        oram.write(5, 1); // escrows block 5, unmapping it
        assert_eq!(
            oram.data_access(BlockAddr(5), None).unwrap_err(),
            AccessError::Unmapped(BlockAddr(5))
        );
        let mut imm = tiny_with(TreeTopMode::Dedicated { levels: 3 }, RemapPolicy::Immediate);
        assert_eq!(
            imm.delayed_insert_block(BlockAddr(5)),
            Err(AccessError::WrongPolicy(BlockAddr(5)))
        );
        assert_eq!(
            imm.delayed_writeback(BlockAddr(5)).unwrap_err(),
            AccessError::WrongPolicy(BlockAddr(5))
        );
    }

    #[test]
    fn irstash_front_door_serves_without_paths() {
        let mut oram = tiny_with(
            TreeTopMode::IrStash {
                levels: 3,
                sets: 16,
                ways: 4,
            },
            RemapPolicy::Immediate,
        );
        // Touch a block repeatedly: once it settles in S-Stash or F-Stash,
        // accesses stop generating paths.
        let mut free_hits = 0;
        for _ in 0..20 {
            let rec = oram.run_access(BlockAddr(3), None);
            if rec.paths.is_empty() {
                free_hits += 1;
            }
        }
        assert!(free_hits > 10, "hot block should serve on-chip ({free_hits})");
        let s = oram.stats();
        assert!(s.fstash_hits + s.sstash_hits + s.treetop_hits > 0);
    }

    #[test]
    fn utilization_snapshot_counts_all_blocks() {
        let oram = PathOram::new(OramConfig::tiny());
        let occ = oram.utilization_per_level();
        let placed: u64 = occ.iter().map(|&(u, _)| u).sum();
        let total = oram.config().total_blocks();
        let in_stash = oram.stash_len() as u64;
        assert_eq!(placed + in_stash, total, "every block accounted for");
    }

    #[test]
    fn stats_reset_keeps_state() {
        let mut oram = PathOram::new(OramConfig::tiny());
        oram.write(9, 1);
        oram.reset_stats();
        assert_eq!(oram.stats().accesses, 0);
        assert_eq!(oram.read(9), 1);
    }

    #[test]
    #[should_panic(expected = "data addresses")]
    fn run_access_rejects_posmap_addresses() {
        let mut oram = PathOram::new(OramConfig::tiny());
        let pm = oram.posmap().space().pm1_block_of(BlockAddr(0));
        oram.run_access(pm, None);
    }

    #[test]
    fn encrypted_payloads_differ_at_rest() {
        let cfg = OramConfig {
            encrypt_payloads: true,
            ..OramConfig::tiny()
        };
        let mut oram = PathOram::new(cfg);
        oram.write(1, 0x1234_5678);
        // Drain the block out of the stash into the tree.
        for _ in 0..50 {
            oram.dummy_path();
        }
        // Find it in the tree; the stored payload must be ciphertext.
        let stored = oram
            .tree()
            .iter_blocks()
            .find(|(_, _, b)| b.addr == BlockAddr(1));
        if let Some((_, _, b)) = stored {
            assert_ne!(b.payload, 0x1234_5678, "payload must not be plaintext");
            assert_eq!(oram.decrypt_payload(b.payload), 0x1234_5678);
        }
        // Regardless of where it ended up, it reads back correctly.
        assert_eq!(oram.read(1), 0x1234_5678);
    }

    #[test]
    fn determinism_same_seed() {
        let run = || {
            let mut oram = PathOram::new(OramConfig::tiny());
            let mut sig = 0u64;
            for a in 0..64u64 {
                let rec = oram.run_access(BlockAddr(a * 3 % 256), Some(a));
                sig = sig
                    .wrapping_mul(31)
                    .wrapping_add(rec.paths.len() as u64)
                    .wrapping_add(rec.payload);
            }
            (sig, oram.stats().clone())
        };
        let (s1, st1) = run();
        let (s2, st2) = run();
        assert_eq!(s1, s2);
        assert_eq!(st1, st2);
    }

    #[test]
    fn save_restore_resumes_identically_all_modes() {
        for treetop in [
            TreeTopMode::None,
            TreeTopMode::Dedicated { levels: 3 },
            TreeTopMode::IrStash {
                levels: 3,
                sets: 16,
                ways: 4,
            },
        ] {
            for remap in [RemapPolicy::Immediate, RemapPolicy::Delayed] {
                let mut a = tiny_with(treetop, remap);
                for i in 0..48u64 {
                    a.run_access(BlockAddr(i * 5 % 256), Some(i));
                }
                let mut w = SnapWriter::new();
                a.save_state(&mut w);
                let bytes = w.into_bytes();
                let mut b = tiny_with(treetop, remap);
                let mut r = SnapReader::new(&bytes);
                b.restore_state(&mut r).unwrap();
                r.finish().unwrap();
                // The restored instance must continue bit-identically.
                for i in 0..48u64 {
                    let ra = a.run_access(BlockAddr(i * 3 % 256), None);
                    let rb = b.run_access(BlockAddr(i * 3 % 256), None);
                    assert_eq!(ra, rb, "{treetop:?} {remap:?} step {i}");
                }
                assert_eq!(a.stats(), b.stats(), "{treetop:?} {remap:?}");
                assert_eq!(a.plb_counters(), b.plb_counters());
                assert_eq!(a.stash_len(), b.stash_len());
            }
        }
    }

    #[test]
    fn restore_rejects_treetop_mode_mismatch() {
        let a = tiny_with(TreeTopMode::Dedicated { levels: 3 }, RemapPolicy::Immediate);
        let mut w = SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = tiny_with(TreeTopMode::None, RemapPolicy::Immediate);
        let mut r = SnapReader::new(&bytes);
        assert!(b.restore_state(&mut r).is_err());
    }

    #[test]
    fn validate_catches_overfull_tree() {
        let mut cfg = OramConfig::tiny();
        cfg.data_blocks = 1 << 12; // far beyond an 8-level tree's 1020 slots
        let result = std::panic::catch_unwind(|| cfg.validate());
        assert!(result.is_err());
    }

    #[test]
    fn batch_of_one_plus_finish_matches_bare_access() {
        // A single batched access followed by finish() must be
        // protocol-identical to run_access: same record payload/paths, same
        // background evictions, same end state.
        let mut a = PathOram::new(OramConfig::tiny());
        let mut b = PathOram::new(OramConfig::tiny());
        for i in 0..64u64 {
            let addr = BlockAddr(i * 7 % 256);
            let write = if i % 3 == 0 { Some(i) } else { None };
            let ra = a.run_access(addr, write);
            let mut batch = b.batch();
            let mut rb = batch.access(addr, write);
            rb.paths.extend(batch.finish());
            assert_eq!(ra, rb, "step {i}");
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stash_len(), b.stash_len());
    }

    #[test]
    fn batch_defers_bg_drain_and_caps_it() {
        let mut oram = PathOram::new(OramConfig::tiny());
        let mut batch = oram.batch();
        for i in 0..16u64 {
            let rec = batch.access(BlockAddr(i), Some(i + 1));
            // No per-access drain inside a batch: only the data path and
            // its PosMap fetches appear on the record.
            assert!(rec.paths.iter().all(|p| p.ptype != PathType::BgEvict));
        }
        assert_eq!(batch.len(), 16);
        assert!(!batch.is_empty());
        let bg = batch.finish();
        assert!(bg.len() <= 16 * oram.config().max_bg_evicts_per_access);
        assert!(bg.iter().all(|p| p.ptype == PathType::BgEvict));
        assert!(!oram.bg_evict_pending());
    }

    #[test]
    fn run_access_with_modifies_in_one_access() {
        let mut oram = PathOram::new(OramConfig::tiny());
        oram.run_access(BlockAddr(9), Some(40));
        let before = oram.stats().accesses;
        let rec = oram.run_access_with(BlockAddr(9), |cur| cur + 2);
        // The record reports the pre-update payload; the update lands in a
        // single logical access.
        assert_eq!(rec.payload, 40);
        assert_eq!(oram.stats().accesses, before + 1);
        assert_eq!(oram.run_access(BlockAddr(9), None).payload, 42);
    }

    #[test]
    fn batched_run_is_functionally_equivalent_to_unbatched() {
        // Same op sequence, batched in groups of 8 vs one-at-a-time: the
        // logical KV contents must agree even though eviction scheduling
        // differs inside a batch.
        let ops: Vec<(u64, Option<u64>)> = (0..128u64)
            .map(|i| (i * 13 % 256, if i % 2 == 0 { Some(i * 3 + 1) } else { None }))
            .collect();
        let mut a = PathOram::new(OramConfig::tiny());
        for &(addr, write) in &ops {
            a.run_access(BlockAddr(addr), write);
        }
        let mut b = PathOram::new(OramConfig::tiny());
        for chunk in ops.chunks(8) {
            let mut batch = b.batch();
            for &(addr, write) in chunk {
                batch.access(BlockAddr(addr), write);
            }
            batch.finish();
        }
        for addr in 0..256u64 {
            assert_eq!(
                a.run_access(BlockAddr(addr), None).payload,
                b.run_access(BlockAddr(addr), None).payload,
                "addr {addr}"
            );
        }
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }
}
