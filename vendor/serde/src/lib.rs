//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports —
//! both the marker traits (type namespace) and the no-op derive macros
//! (macro namespace). No serialization framework is included; the
//! workspace never serializes at runtime, the derives only declare intent.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
