//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock harness. No statistics machinery: each benchmark warms
//! up, then runs timed batches for the configured measurement window and
//! reports the mean time per iteration (plus throughput when declared).
//! Good enough to compare hot-path kernels before/after within one machine.

use std::time::{Duration, Instant};

/// Per-element/byte throughput declaration (subset of
/// `criterion::Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (subset of
/// `criterion::BatchSize`). The shim times per-iteration regardless, so
/// the variants only influence batching granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; batches of many iterations.
    SmallInput,
    /// Large setup output; smaller batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_one(&cfg, None, name, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        run_one(&cfg, Some(&self.name), name, self.throughput, f);
        self
    }

    /// Ends the group (printing is immediate; this is a no-op for layout
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    /// Iterations to run in this timed sample.
    iters: u64,
    /// Accumulated busy time for this sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_sample<F>(f: &mut F, iters: u64) -> Duration
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F>(
    cfg: &Criterion,
    group: Option<&str>,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_owned(),
    };
    // Warm-up while calibrating how many iterations fit a sample.
    let mut iters_per_sample = 1u64;
    let warm_start = Instant::now();
    loop {
        let t = run_sample(&mut f, iters_per_sample);
        if warm_start.elapsed() >= cfg.warm_up_time {
            // Aim each sample at measurement_time / sample_size.
            let target = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
            let per_iter = (t.as_secs_f64() / iters_per_sample as f64).max(1e-9);
            iters_per_sample = ((target / per_iter).round() as u64).max(1);
            break;
        }
        if t < Duration::from_millis(5) {
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }
    }
    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let t = run_sample(&mut f, iters_per_sample);
        samples.push(t.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let mut line = format!(
        "{label:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    if let Some(t) = throughput {
        let (unit, count) = match t {
            Throughput::Elements(n) => ("elem", n),
            Throughput::Bytes(n) => ("B", n),
        };
        let rate = count as f64 / median;
        line.push_str(&format!("  thrpt: {} {unit}/s", fmt_rate(rate)));
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declares a benchmark group runner function (subset of criterion's
/// macro: the `name/config/targets` form plus the simple list form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        let mut total = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| total += x, BatchSize::SmallInput)
        });
        g.finish();
        assert!(total > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_rate(2_000_000.0).ends_with('M'));
    }
}
