//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the `proptest!` macro with an optional `#![proptest_config(...)]`
//! header, integer-range and `any::<T>()` strategies, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! splitmix64 stream seeded by the test's module path, so failures
//! reproduce across runs and machines (there is no shrinking — the
//! failing inputs are printed instead).

use std::ops::Range;

/// Run-count configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps hermetic CI fast while still
        // exercising a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes), so every property
    /// gets an independent, stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// `any::<T>()` — the full-domain strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Commonly-used re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts inside a property (panics with the case's inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // The case body runs inside a closure; returning skips the case.
            return;
        }
    };
}

/// The property-test declaration macro.
///
/// Supports the form used across this workspace: an optional
/// `#![proptest_config(...)]` header followed by property functions whose
/// arguments are drawn from strategies. In test modules each property
/// carries `#[test]`; without the attribute the macro expands to a plain
/// function, which is how this example drives one directly:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn prop_name(x in 0u64..10, y in any::<u64>()) {
///         prop_assert!(x < 10);
///         prop_assert_eq!(y.wrapping_add(1).wrapping_sub(1), y);
///     }
/// }
///
/// prop_name();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::TestRng::from_name(__name);
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs: {:?}",
                        __case + 1,
                        __cfg.cases,
                        __name,
                        ($(&$arg,)*)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges respect their bounds.
        #[test]
        fn range_strategy_in_bounds(x in 3usize..9, y in 0u64..1000) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn any_produces_values(v in any::<u64>(), flip in any::<bool>()) {
            // Trivially true; exercises the macro plumbing.
            prop_assert_eq!(v, v);
            prop_assert!(usize::from(flip) <= 1);
        }
    }
}
