//! Offline stand-in for `serde_derive`.
//!
//! The repository compiles in a hermetic environment with no registry
//! access, and nothing in the workspace actually serializes at runtime
//! (the derives only decorate simulator state so downstream consumers
//! *could* serialize it). These derives therefore expand to nothing; the
//! `#[serde(...)]` helper attribute is accepted and ignored.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
