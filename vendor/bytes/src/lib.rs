//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the cursor/builder subset `iroram-trace`'s binary IO
//! uses: `BytesMut` as an append-only builder and `Bytes` as a consuming
//! little-endian cursor. Semantics match the real crate for this subset
//! (including panics on under-length reads).

use std::ops::Deref;

/// Read-side cursor API (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side builder API (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Freezes into an immutable cursor.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Immutable byte cursor (subset of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes {
            inner: s.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.inner.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice of {} bytes with {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.inner[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 3);
        b.put_slice(b"xy");
        let mut r = Bytes::from(b.to_vec());
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        let mut t = [0u8; 2];
        r.copy_to_slice(&mut t);
        assert_eq!(&t, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn underflow_panics() {
        let mut r = Bytes::from(vec![1u8]);
        r.get_u32_le();
    }
}
