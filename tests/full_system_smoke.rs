//! Full-system smoke tests: every scheme runs every workload class to
//! completion with self-consistent reports.

use ir_oram::{RunLimit, Scheme, SimReport, Simulation, SystemConfig, ALL_SCHEMES};
use iroram_trace::Bench;

fn tiny(scheme: Scheme) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(scheme);
    cfg.oram.levels = 11;
    cfg.oram.data_blocks = 1 << 12;
    cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(11, 4);
    cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 4 };
    cfg.hierarchy = iroram_cache::HierarchyConfig {
        l1_sets: 16,
        l1_assoc: 2,
        llc_sets: 64,
        llc_assoc: 8,
    };
    cfg.with_scheme(scheme)
}

fn check_consistency(r: &SimReport, scheme: Scheme) {
    let label = format!("{scheme:?}/{}", r.workload);
    assert!(r.cycles > 0, "{label}: no time elapsed");
    assert!(r.instructions >= r.mem_ops, "{label}: gap accounting");
    // Slot accounting balances.
    let s = &r.slots;
    assert_eq!(
        s.total_slots,
        s.real_slots + s.bg_slots + s.dummy_slots + s.converted_slots,
        "{label}: slot categories must partition the total"
    );
    // Every slot carried exactly one path access (real, bg, dummy or
    // converted), all recorded by the protocol — and nothing else did.
    assert_eq!(
        r.total_paths(),
        s.total_slots,
        "{label}: protocol paths must equal issued slots"
    );
    // DRAM traffic exists iff paths were issued.
    if s.total_slots > 0 {
        assert!(r.dram.requests > 0, "{label}: paths without DRAM traffic");
    }
    // Reads and writes to DRAM are symmetric (each path reads and rewrites
    // the same slots).
    assert_eq!(r.dram.reads, r.dram.writes, "{label}: path symmetry");
}

#[test]
fn every_scheme_on_light_medium_heavy() {
    for scheme in ALL_SCHEMES {
        for bench in [Bench::Xal, Bench::Bla, Bench::Lbm] {
            let cfg = tiny(scheme);
            let r = Simulation::run_bench(&cfg, bench, RunLimit::mem_ops(2_500));
            assert_eq!(r.mem_ops, 2_500);
            check_consistency(&r, scheme);
        }
    }
}

#[test]
fn mix_and_random_workloads_run() {
    for scheme in [Scheme::Baseline, Scheme::IrOram, Scheme::Rho] {
        for bench in [Bench::Mix, Bench::RandomUniform] {
            let cfg = tiny(scheme);
            let r = Simulation::run_bench(&cfg, bench, RunLimit::mem_ops(2_000));
            check_consistency(&r, scheme);
        }
    }
}

#[test]
fn protocol_invariants_hold_after_timed_runs() {
    use ir_oram::TimedController;
    use iroram_cache::MemoryHierarchy;
    use iroram_protocol::BlockAddr;
    use iroram_sim_engine::Cycle;

    for scheme in [Scheme::Baseline, Scheme::IrAlloc, Scheme::IrStash, Scheme::IrOram] {
        let cfg = tiny(scheme);
        let mut ctl = TimedController::new(&cfg);
        let mut h = MemoryHierarchy::new(cfg.hierarchy);
        let mut id = 0;
        for a in (0..2048u64).step_by(7) {
            if ctl.front_try(BlockAddr(a), Cycle(0)).is_none() {
                id += 1;
                ctl.submit(ir_oram::OramRequest {
                    id,
                    addr: BlockAddr(a),
                    arrival: Cycle(0),
                    blocking: false,
                });
            }
        }
        ctl.drain(&mut h).unwrap();
        ctl.protocol
            .check_invariants()
            .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
    }
}

#[test]
fn timing_protection_ablation_runs_faster_or_equal_traffic() {
    // Without timing protection there are no dummy paths, so total DRAM
    // traffic must not exceed the protected run's.
    let cfg = tiny(Scheme::Baseline);
    let with_tp = Simulation::run_bench(&cfg, Bench::Gcc, RunLimit::mem_ops(2_000));
    let mut cfg2 = cfg.clone();
    cfg2.timing_protection = false;
    let without = Simulation::run_bench(&cfg2, Bench::Gcc, RunLimit::mem_ops(2_000));
    assert!(without.dram.requests <= with_tp.dram.requests);
    assert_eq!(without.slots.dummy_slots, 0);
    assert!(with_tp.slots.dummy_slots > 0);
}

#[test]
fn rho_small_tree_carries_traffic() {
    let cfg = tiny(Scheme::Rho);
    // mcf's uniform misses re-reference addresses within the reuse filter's
    // window, so some blocks install into the small tree.
    let r = Simulation::run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(4_000));
    let small = r.protocol_small.as_ref().expect("rho has a small tree");
    assert!(
        small.total_paths() > 0,
        "the 1:2 pattern must exercise the small tree"
    );
    check_consistency(&r, Scheme::Rho);
}
