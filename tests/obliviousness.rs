//! Security-property tests: the externally visible memory trace must not
//! depend on what the ORAM controller is doing internally.
//!
//! Section IV-E's two uniformity arguments, checked mechanically:
//!
//! 1. **Path accesses are indistinguishable** — every path access of a
//!    given configuration touches exactly the same number of blocks at each
//!    tree level, whatever its internal type (data / PosMap / dummy /
//!    converted), and leaf choices are uniform.
//! 2. **Access intensity is workload-independent** — with timing protection
//!    on, the slot *count per unit time* is a function of the configuration
//!    alone, not of the request stream.

use ir_oram::{RunLimit, Scheme, Simulation, SystemConfig};
use iroram_dram::SubtreeLayout;
use iroram_protocol::{OramConfig, PathOram, PathType};
use iroram_sim_engine::SimRng;
use iroram_trace::Bench;

fn tiny(scheme: Scheme) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(scheme);
    cfg.oram.levels = 11;
    cfg.oram.data_blocks = 1 << 12;
    cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(11, 4);
    cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 4 };
    cfg.with_scheme(scheme)
}

/// Every path, whatever the leaf, reads the same number of memory blocks —
/// including under IR-Alloc's non-uniform (but public) bucket sizes.
#[test]
fn path_footprint_is_leaf_independent() {
    for scheme in [Scheme::Baseline, Scheme::IrAlloc, Scheme::IrOram] {
        let cfg = tiny(scheme);
        let cached = cfg.oram.treetop.cached_levels();
        let z = iroram_protocol::TreeLayout::new(cfg.oram.zalloc.clone());
        let layout = SubtreeLayout::new(&z.memory_z(cached), cfg.subtree_group);
        let expect = layout.path_slots(0, 0).len();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 {
            let leaf = rng.next_below(1 << 10);
            assert_eq!(
                layout.path_slots(leaf, 0).len(),
                expect,
                "{scheme:?}: leaf {leaf} has a different footprint"
            );
        }
    }
}

/// Internal path types produce identical external shapes: same leaf-space,
/// same per-path block count. We drive the protocol and check that dummy
/// and real paths are drawn from statistically indistinguishable leaf
/// distributions (coarse chi-square on leaf high bits).
#[test]
fn dummy_and_real_leaves_are_equally_distributed() {
    let mut oram = PathOram::new(OramConfig::tiny());
    let n_leaves = oram.layout().num_leaves();
    let mut rng = SimRng::seed_from(17);
    const BUCKETS: usize = 8;
    let mut real = [0f64; BUCKETS];
    let mut dummy = [0f64; BUCKETS];
    for i in 0..4_000u64 {
        let bucket = |leaf: u64| (leaf * BUCKETS as u64 / n_leaves) as usize;
        if i % 2 == 0 {
            let rec = oram.run_access(
                iroram_protocol::BlockAddr(rng.next_below(oram.config().data_blocks)),
                None,
            );
            for p in rec.paths {
                real[bucket(p.leaf.0)] += 1.0;
            }
        } else {
            let p = oram.dummy_path();
            dummy[bucket(p.leaf.0)] += 1.0;
        }
    }
    let total_real: f64 = real.iter().sum();
    let total_dummy: f64 = dummy.iter().sum();
    assert!(total_real > 100.0 && total_dummy > 100.0, "need samples");
    // Two-sample chi-square over the 8 buckets.
    let mut chi2 = 0.0;
    for b in 0..BUCKETS {
        let expect_real = total_real / BUCKETS as f64;
        let expect_dummy = total_dummy / BUCKETS as f64;
        chi2 += (real[b] - expect_real).powi(2) / expect_real;
        chi2 += (dummy[b] - expect_dummy).powi(2) / expect_dummy;
    }
    // 14 degrees of freedom, p=0.001 critical value ≈ 36.1.
    assert!(chi2 < 36.1, "leaf distributions distinguishable: chi2 {chi2}");
}

/// With timing protection, the number of slots issued over a window is the
/// same whether the workload is idle (all dummies) or saturated (all real):
/// the attacker learns nothing from access intensity.
#[test]
fn slot_rate_is_workload_independent() {
    use ir_oram::TimedController;
    use iroram_cache::MemoryHierarchy;
    use iroram_protocol::BlockAddr;
    use iroram_sim_engine::Cycle;

    let cfg = tiny(Scheme::Baseline);
    let horizon = Cycle(400_000);

    // Idle controller: dummies only.
    let mut idle = TimedController::new(&cfg);
    let mut h1 = MemoryHierarchy::new(cfg.hierarchy);
    idle.advance_until(horizon, &mut h1).unwrap();
    let idle_slots = idle.slot_stats().total_slots;

    // Saturated controller: a deep queue of real requests.
    let mut busy = TimedController::new(&cfg);
    let mut h2 = MemoryHierarchy::new(cfg.hierarchy);
    let mut id = 0;
    for a in (0..4096u64).step_by(3) {
        if busy.front_try(BlockAddr(a), Cycle(0)).is_none() {
            id += 1;
            busy.submit(ir_oram::OramRequest {
                id,
                addr: BlockAddr(a),
                arrival: Cycle(0),
                blocking: false,
            });
        }
    }
    busy.advance_until(horizon, &mut h2).unwrap();
    let busy_slots = busy.slot_stats().total_slots;

    // Path service time varies slightly with row-buffer state, so allow a
    // small band — but idle and busy must be within a few percent.
    let lo = idle_slots.min(busy_slots) as f64;
    let hi = idle_slots.max(busy_slots) as f64;
    assert!(
        hi / lo < 1.05,
        "slot rate leaks load: idle {idle_slots} vs busy {busy_slots}"
    );
}

/// The pipelined controllers keep both uniformity arguments at every
/// depth: over a fixed horizon, an idle (all-dummy) and a saturated
/// (all-real) controller issue the same number of slots, and every slot
/// carries exactly the same DRAM request count — so the externally visible
/// address *volume and rate* are request-content-independent at depths 1,
/// 2 and 4. Runs are audited, so the depth-k exact-schedule, conservation
/// and oracle checks all gate the overlapped schedules too.
#[test]
fn dram_traffic_is_workload_independent_at_every_pipeline_depth() {
    use ir_oram::TimedController;
    use iroram_cache::MemoryHierarchy;
    use iroram_protocol::BlockAddr;
    use iroram_sim_engine::Cycle;

    let horizon = Cycle(300_000);
    for depth in [1u32, 2, 4] {
        let mut cfg = tiny(Scheme::Baseline);
        cfg.pipeline_depth = depth;
        cfg.audit = true;

        let mut idle = TimedController::new(&cfg);
        let mut h1 = MemoryHierarchy::new(cfg.hierarchy);
        idle.advance_until(horizon, &mut h1).unwrap();
        let idle_slots = idle.slot_stats().total_slots;
        // The pipelined controller legitimately holds one write batch in
        // its deferred buffer mid-run; count it so the per-slot identity
        // below stays exact.
        let idle_reqs = idle.dram_stats().requests + idle.deferred_write_lines();

        let mut busy = TimedController::new(&cfg);
        let mut h2 = MemoryHierarchy::new(cfg.hierarchy);
        let mut id = 0;
        for a in (0..4096u64).step_by(3) {
            if busy.front_try(BlockAddr(a), Cycle(0)).is_none() {
                id += 1;
                busy.submit(ir_oram::OramRequest {
                    id,
                    addr: BlockAddr(a),
                    arrival: Cycle(0),
                    blocking: false,
                });
            }
        }
        busy.advance_until(horizon, &mut h2).unwrap();
        let busy_slots = busy.slot_stats().total_slots;
        let busy_reqs = busy.dram_stats().requests + busy.deferred_write_lines();

        let lo = idle_slots.min(busy_slots) as f64;
        let hi = idle_slots.max(busy_slots) as f64;
        assert!(
            hi / lo < 1.05,
            "depth {depth}: slot rate leaks load: idle {idle_slots} vs busy {busy_slots}"
        );
        // Every slot moves an identical number of DRAM lines whatever it
        // carries: requests-per-slot must match exactly across workloads.
        assert_eq!(
            idle_reqs * busy_slots,
            busy_reqs * idle_slots,
            "depth {depth}: per-slot DRAM request count depends on the workload \
             (idle {idle_reqs}/{idle_slots}, busy {busy_reqs}/{busy_slots})"
        );
        for (name, ctl) in [("idle", &idle), ("busy", &busy)] {
            let report = ctl.audit_report().expect("audit enabled");
            assert!(
                report.is_clean(),
                "depth {depth}: {name} audit violations: {:?}",
                report.samples
            );
            assert!(report.checks > 0, "audit must actually run");
        }
        if depth == 1 {
            assert!(
                idle.pipeline_stats().is_none(),
                "depth 1 must run the serial code path"
            );
        } else {
            assert!(idle.pipeline_stats().is_some());
        }
    }
}

/// IR-DWB conversions must not change the external slot rate either.
#[test]
fn dwb_keeps_slot_rate() {
    use iroram_cache::MemoryHierarchy;
    use iroram_sim_engine::Cycle;

    let base_cfg = tiny(Scheme::Baseline);
    let dwb_cfg = tiny(Scheme::IrDwb);
    let horizon = Cycle(300_000);

    let mut base = ir_oram::TimedController::new(&base_cfg);
    let mut h1 = MemoryHierarchy::new(base_cfg.hierarchy);
    base.advance_until(horizon, &mut h1).unwrap();

    let mut dwb = ir_oram::TimedController::new(&dwb_cfg);
    let mut h2 = MemoryHierarchy::new(dwb_cfg.hierarchy);
    // Dirty some LLC lines so conversions actually happen.
    for a in 0..32u64 {
        h2.access(a, true);
    }
    dwb.advance_until(horizon, &mut h2).unwrap();

    let b = base.slot_stats().total_slots as f64;
    let d = dwb.slot_stats().total_slots as f64;
    assert!(
        (b - d).abs() / b < 0.05,
        "IR-DWB changed the external rate: {b} vs {d}"
    );
    assert!(
        dwb.slot_stats().converted_slots > 0,
        "conversions should have occurred"
    );
}

/// End-to-end: per-benchmark external path counts depend only on the time
/// horizon, not on which benchmark runs (fixed-rate discipline).
#[test]
fn paths_per_cycle_stable_across_benchmarks() {
    let cfg = tiny(Scheme::Baseline);
    let mut rates = Vec::new();
    for bench in [Bench::Xal, Bench::Lbm] {
        let r = Simulation::run_bench(&cfg, bench, RunLimit::mem_ops(2_000));
        rates.push(r.slots.total_slots as f64 / r.cycles as f64);
    }
    let (a, b) = (rates[0], rates[1]);
    assert!(
        (a - b).abs() / a.max(b) < 0.1,
        "slots per cycle differ: {a:.6} vs {b:.6}"
    );
}

/// Dummy paths are indistinguishable in *effect* too: they read and rewrite
/// a full path, so their DRAM footprint equals a real path's.
#[test]
fn dummy_dram_footprint_equals_real() {
    let mut oram = PathOram::new(OramConfig::tiny());
    let before = oram.stats().blocks_from_memory;
    oram.dummy_path();
    let dummy_blocks = oram.stats().blocks_from_memory - before;

    let before = oram.stats().blocks_from_memory;
    let rec = oram.run_access(iroram_protocol::BlockAddr(5), None);
    assert!(
        rec.paths
            .iter()
            .all(|p| !matches!(p.ptype, PathType::Dummy)),
        "a demand access issues no dummies"
    );
    let per_real = if rec.paths.is_empty() {
        dummy_blocks // served on-chip: nothing to compare
    } else {
        (oram.stats().blocks_from_memory - before) / rec.paths.len() as u64
    };
    assert_eq!(
        dummy_blocks,
        per_real,
        "dummy and real paths must move the same number of blocks"
    );
}
