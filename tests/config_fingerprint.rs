//! Regression guard for the resume-journal fingerprint: two configurations
//! differing in any single [`SystemConfig`] field must fingerprint
//! differently, for **every** field. A field the fingerprint ignored would
//! let `--resume` answer a cell from a run with different inputs — silent
//! result corruption. (The config-drift pass of `iroram-lint` checks the
//! same property lexically; this test checks it behaviorally.)

use ir_oram::{RunLimit, Scheme, SystemConfig};
use iroram_sim_engine::ClockRatio;
use iroram_trace::Bench;

use iroram_experiments::journal::fingerprint;

fn base() -> SystemConfig {
    SystemConfig::scaled(Scheme::Baseline)
}

fn fp(cfg: &SystemConfig) -> u64 {
    fingerprint(cfg, Bench::Gcc, RunLimit::mem_ops(1000))
}

/// One mutation per `SystemConfig` field, each touching only its field.
fn single_field_mutations() -> Vec<(&'static str, SystemConfig)> {
    let mut out: Vec<(&'static str, SystemConfig)> = Vec::new();
    let mut push = |name: &'static str, f: &dyn Fn(&mut SystemConfig)| {
        let mut cfg = base();
        f(&mut cfg);
        out.push((name, cfg));
    };
    push("scheme", &|c| c.scheme = Scheme::Rho);
    push("oram", &|c| c.oram.seed ^= 1);
    push("hierarchy", &|c| c.hierarchy.l1_assoc += 1);
    push("dram", &|c| c.dram.reorder_window += 1);
    push("t_interval", &|c| c.t_interval += 1);
    push("timing_protection", &|c| {
        c.timing_protection = !c.timing_protection;
    });
    push("clock", &|c| c.clock = ClockRatio::new(7, 3));
    push("rob_insts", &|c| c.rob_insts += 1);
    push("ipc", &|c| c.ipc += 1);
    push("mshrs", &|c| c.mshrs += 1);
    push("l1_hit_lat", &|c| c.l1_hit_lat += 1);
    push("llc_hit_lat", &|c| c.llc_hit_lat += 1);
    push("front_hit_lat", &|c| c.front_hit_lat += 1);
    push("decrypt_lat", &|c| c.decrypt_lat += 1);
    push("subtree_group", &|c| c.subtree_group += 1);
    push("seed", &|c| c.seed ^= 1);
    push("audit", &|c| c.audit = !c.audit);
    push("faults", &|c| c.faults.seed ^= 1);
    push("refetch_lat", &|c| c.refetch_lat += 1);
    push("stash_hard_limit", &|c| c.stash_hard_limit += 1);
    push("sched_threads", &|c| c.sched_threads += 1);
    push("pipeline_depth", &|c| c.pipeline_depth += 1);
    push("checkpoint_interval", &|c| c.checkpoint_interval += 1);
    out
}

#[test]
fn every_field_is_fingerprinted() {
    let base_fp = fp(&base());
    for (field, cfg) in single_field_mutations() {
        assert_ne!(
            fp(&cfg),
            base_fp,
            "SystemConfig::{field} is not covered by the resume fingerprint"
        );
    }
}

#[test]
fn mutation_list_covers_every_field() {
    // The mutation list above must stay exhaustive. Destructure with no
    // `..` so adding a SystemConfig field breaks this test until a
    // mutation is added for it.
    let SystemConfig {
        scheme: _,
        oram: _,
        hierarchy: _,
        dram: _,
        t_interval: _,
        timing_protection: _,
        clock: _,
        rob_insts: _,
        ipc: _,
        mshrs: _,
        l1_hit_lat: _,
        llc_hit_lat: _,
        front_hit_lat: _,
        decrypt_lat: _,
        subtree_group: _,
        seed: _,
        audit: _,
        faults: _,
        refetch_lat: _,
        stash_hard_limit: _,
        sched_threads: _,
        pipeline_depth: _,
        checkpoint_interval: _,
    } = base();
    assert_eq!(single_field_mutations().len(), 23);
}

#[test]
fn distinct_mutations_fingerprint_pairwise_distinct() {
    let fps: Vec<(&str, u64)> = single_field_mutations()
        .iter()
        .map(|(n, c)| (*n, fp(c)))
        .collect();
    for (i, (na, a)) in fps.iter().enumerate() {
        for (nb, b) in &fps[i + 1..] {
            assert_ne!(a, b, "fingerprint collision between {na} and {nb}");
        }
    }
}

#[test]
fn fingerprint_covers_bench_and_limit() {
    let c = base();
    let f = fingerprint(&c, Bench::Gcc, RunLimit::mem_ops(1000));
    assert_ne!(f, fingerprint(&c, Bench::Mcf, RunLimit::mem_ops(1000)));
    assert_ne!(f, fingerprint(&c, Bench::Gcc, RunLimit::mem_ops(1001)));
}
