//! Model-based tests for the sharded oblivious KV layer: random
//! put/get/delete workloads must match a `BTreeMap` reference model
//! exactly — per-shard (one cuckoo table under stress) and cross-shard
//! (the directory + service plumbing) — and the packed-entry encoding
//! edge cases must hold.

use std::collections::BTreeMap;

use iroram_kv::{KvConfig, KvError, KvOp, KvService, KvShard};
use iroram_protocol::OramConfig;
use iroram_sim_engine::SimRng;
use proptest::prelude::*;

/// Applies one op to both the KV under test (via a closure) and the
/// model, asserting agreement. `full` tracks keys the store refused with
/// `StoreFull`, which the model then must not contain.
fn step_model(
    model: &mut BTreeMap<u32, u32>,
    op: KvOp,
    got: Result<Option<u32>, KvError>,
) {
    match op {
        KvOp::Put { key, value } => match got {
            Ok(prev) => {
                prop_assert_eq!(prev, model.insert(key, value), "put {}", key);
            }
            Err(KvError::StoreFull) => {
                // A refused put must not have touched the model's view.
                prop_assert!(
                    !model.contains_key(&key),
                    "StoreFull for a key that was already present: {}",
                    key
                );
            }
            Err(e) => prop_assert!(false, "unexpected error {:?}", e),
        },
        KvOp::Get { key } => {
            prop_assert_eq!(got, Ok(model.get(&key).copied()), "get {}", key);
        }
        KvOp::Delete { key } => {
            prop_assert_eq!(got, Ok(model.remove(&key)), "delete {}", key);
        }
    }
}

/// A random workload over a small key universe (so collisions, updates,
/// deletes of present keys, and re-inserts all actually happen).
fn workload(seed: u64, ops: usize, key_space: u32) -> Vec<KvOp> {
    let mut rng = SimRng::seed_from(seed);
    (0..ops)
        .map(|_| {
            let key = 1 + rng.next_below(u64::from(key_space)) as u32;
            match rng.next_below(10) {
                0..=4 => KvOp::Put {
                    key,
                    value: rng.next_u64() as u32,
                },
                5..=7 => KvOp::Get { key },
                _ => KvOp::Delete { key },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One shard, squeezed into a 64-slot table: the cuckoo displacement
    /// and overflow paths run constantly and must still agree with the
    /// model op for op.
    #[test]
    fn prop_single_shard_matches_btreemap(seed in any::<u64>()) {
        let mut shard = KvShard::new(OramConfig::tiny(), 64);
        let mut model: BTreeMap<u32, u32> = BTreeMap::new();
        for op in workload(seed, 300, 96) {
            let got = shard.run_op(op);
            step_model(&mut model, op, got);
        }
        // Everything the model holds must be readable at the end.
        let keys: Vec<u32> = model.keys().copied().collect();
        for k in keys {
            prop_assert_eq!(shard.run_op(KvOp::Get { key: k }), Ok(model.get(&k).copied()));
        }
        shard.oram().check_invariants().expect("ORAM sound");
    }

    /// The full service across 3 shards, flushing in batches: directory
    /// routing, per-shard queues and reply merging must preserve exact
    /// map semantics.
    #[test]
    fn prop_service_matches_btreemap(seed in any::<u64>()) {
        let mut cfg = KvConfig::for_keys(512, 3);
        cfg.batch_ops = 7; // odd batch size: exercise partial chunks
        let mut kv = KvService::new(cfg);
        let mut model: BTreeMap<u32, u32> = BTreeMap::new();
        let ops = workload(seed, 240, 400);
        for window in ops.chunks(40) {
            let mut submitted = Vec::new();
            for &op in window {
                let seq = kv.submit(op).expect("queue sized for the window");
                submitted.push((seq, op));
            }
            let outcome = kv.flush();
            prop_assert_eq!(outcome.replies.len(), submitted.len());
            // Replies come back sorted by and matched to sequence number.
            for ((seq, op), result) in submitted.into_iter().zip(outcome.replies) {
                prop_assert_eq!(result.seq, seq);
                step_model(&mut model, op, result.reply);
            }
        }
        // The store's dump is exactly the model's contents.
        let dump: Vec<(u32, u32)> = kv.dump();
        let expect: Vec<(u32, u32)> = model.into_iter().collect();
        prop_assert_eq!(dump, expect);
    }
}

#[test]
fn queue_full_is_reported_and_recoverable() {
    let mut cfg = KvConfig::for_keys(512, 1);
    cfg.queue_capacity = 4;
    let mut kv = KvService::new(cfg);
    for k in 1..=4u32 {
        kv.submit(KvOp::Get { key: k }).unwrap();
    }
    assert_eq!(kv.submit(KvOp::Get { key: 5 }), Err(KvError::QueueFull));
    kv.flush();
    assert!(kv.submit(KvOp::Get { key: 5 }).is_ok(), "flush drains the queue");
}

#[test]
fn zero_key_errors_do_not_poison_the_batch() {
    let mut kv = KvService::new(KvConfig::for_keys(512, 2));
    kv.submit(KvOp::Put { key: 1, value: 10 }).unwrap();
    kv.submit(KvOp::Put { key: 0, value: 99 }).unwrap();
    kv.submit(KvOp::Get { key: 1 }).unwrap();
    let replies = kv.flush().replies;
    assert_eq!(replies[0].reply, Ok(None));
    assert_eq!(replies[1].reply, Err(KvError::ZeroKey));
    assert_eq!(replies[2].reply, Ok(Some(10)));
}

#[test]
fn extreme_keys_and_values_roundtrip() {
    // The packed-entry encoding edge cases, end to end: max key, max
    // value, value 0, and the key that packs to the all-ones upper half.
    let mut kv = KvService::new(KvConfig::for_keys(512, 2));
    for (k, v) in [(1u32, 0u32), (u32::MAX, u32::MAX), (1 << 31, 1)] {
        assert_eq!(kv.put(k, v), Ok(None), "put {k}");
        assert_eq!(kv.get(k), Ok(Some(v)), "get {k}");
    }
    // Updating the max key to value 0 must stay distinguishable from empty.
    assert_eq!(kv.put(u32::MAX, 0), Ok(Some(u32::MAX)));
    assert_eq!(kv.get(u32::MAX), Ok(Some(0)));
    assert_eq!(kv.delete(u32::MAX), Ok(Some(0)));
    assert_eq!(kv.get(u32::MAX), Ok(None));
}
