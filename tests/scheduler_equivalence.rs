//! Differential guard for the zero-allocation FR-FCFS scheduler.
//!
//! The DRAM scheduler was rewritten from a per-batch allocate-and-remove
//! loop into persistent per-channel scratch queues with an index-cursor
//! scan. The original naive algorithm is kept, verbatim, behind the
//! `reference-scheduler` feature, and a thread-local switch
//! ([`iroram_dram::reference::force`]) routes the public scheduling API
//! through it. These tests pin the rewrite to the reference:
//!
//! * every scheme's **full-system report** is byte-identical under either
//!   scheduler (the end-to-end contract the figures depend on), and
//! * random request batches produce identical completions, stats, and
//!   underflow counts straight at the [`DramSystem`] API (the unit-level
//!   contract, via proptest).
//!
//! Cells run with `jobs = 1`: the force switch is thread-local, so the
//! reference runs must stay on the calling thread.

use ir_oram::ALL_SCHEMES;
use iroram_dram::{
    reference, AddressMapping, DramConfig, DramSystem, Interleave, MemRequest,
};
use iroram_experiments::runner::{run_scheme, ExpOptions};
use iroram_sim_engine::Cycle;
use iroram_trace::Bench;
use proptest::prelude::*;

const BENCHES: [Bench; 2] = [Bench::Mcf, Bench::Gcc];

fn tiny_opts() -> ExpOptions {
    let mut o = ExpOptions::quick();
    o.mem_ops = 1_500;
    o.timed_levels = 10;
    o.jobs = 1; // the reference switch is thread-local
    o
}

#[test]
fn every_scheme_reports_identically_under_the_reference_scheduler() {
    let opts = tiny_opts();
    for scheme in ALL_SCHEMES {
        let fast = run_scheme(&opts, scheme, &BENCHES);
        reference::force(true);
        let naive = run_scheme(&opts, scheme, &BENCHES);
        reference::force(false);
        // SimReport intentionally has no PartialEq; the Debug form covers
        // every field of every nested stats struct.
        assert_eq!(
            format!("{fast:?}"),
            format!("{naive:?}"),
            "scheme {} diverged from the reference scheduler",
            scheme.name()
        );
    }
}

/// The access-pipeline analogue of the scheduler twin: a controller
/// configured at depth 1 must report byte-identically to the serial twin
/// (`ir_oram::pipeline::serial::force`, which pins the pre-pipeline code
/// path even under a deep config), across worker-pool sizes and DRAM
/// scheduler thread counts — depth, `--jobs`, and `sched_threads` are all
/// orthogonal to reported results at depth 1.
#[test]
fn depth_one_matches_the_serial_pipeline_twin_at_any_parallelism() {
    use ir_oram::pipeline::serial;
    use ir_oram::Scheme;

    let opts = tiny_opts();
    // Rho covers the dual-tree controller; IrOram covers DWB + the rest.
    for scheme in [Scheme::Baseline, Scheme::Rho, Scheme::IrOram] {
        // The twin: even a depth-4 config must come out serial while the
        // force switch is on (jobs = 1 — the switch is thread-local).
        let mut twin_opts = opts.clone();
        twin_opts
            .overrides
            .push(("pipeline_depth".to_owned(), "4".to_owned()));
        serial::force(true);
        let twin = run_scheme(&twin_opts, scheme, &BENCHES);
        serial::force(false);
        let twin_repr = format!("{twin:?}");

        for jobs in [1usize, 4] {
            for sched_threads in [1u32, 4] {
                let mut o = opts.clone();
                o.jobs = jobs;
                o.overrides
                    .push(("pipeline_depth".to_owned(), "1".to_owned()));
                o.overrides
                    .push(("sched_threads".to_owned(), sched_threads.to_string()));
                let got = run_scheme(&o, scheme, &BENCHES);
                assert_eq!(
                    format!("{got:?}"),
                    twin_repr,
                    "scheme {} diverged from the serial twin at depth 1 \
                     (jobs={jobs}, sched_threads={sched_threads})",
                    scheme.name()
                );
            }
        }
    }
}

/// The pipeline's reason to exist: in the service-bound regime the
/// read-phase floor, not `T`, paces the controller, so letting the floor
/// come from `depth` slots back — with the write-back batch deferred
/// behind the next read — must shorten a memory-bound (queue-saturated)
/// request stream. A serially dependent pointer-chase sees no benefit
/// (each access waits for the previous one's data), which is why this
/// measures a saturated queue rather than a blocking trace replay.
#[test]
fn depth_four_shortens_memory_bound_execution() {
    use ir_oram::{OramRequest, Scheme, SystemConfig, TimedController};
    use iroram_cache::MemoryHierarchy;
    use iroram_protocol::BlockAddr;
    use iroram_sim_engine::Cycle;

    let drain_time = |depth: u32| {
        let mut cfg = SystemConfig::scaled(Scheme::Baseline);
        cfg.oram.levels = 11;
        cfg.oram.data_blocks = 1 << 12;
        cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(11, 4);
        cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 4 };
        cfg.pipeline_depth = depth;
        let cfg = cfg.with_scheme(Scheme::Baseline);
        let mut ctl = TimedController::new(&cfg);
        let mut h = MemoryHierarchy::new(cfg.hierarchy);
        let mut id = 0;
        for a in (0..4096u64).step_by(7) {
            if ctl.front_try(BlockAddr(a), Cycle(0)).is_none() {
                id += 1;
                ctl.submit(OramRequest {
                    id,
                    addr: BlockAddr(a),
                    arrival: Cycle(0),
                    blocking: false,
                });
            }
        }
        ctl.drain(&mut h).expect("drain").raw()
    };

    let serial = drain_time(1);
    let pipelined = drain_time(4);
    assert!(
        pipelined < serial,
        "depth 4 must overlap accesses: {pipelined} vs serial {serial} cycles to drain"
    );
}

/// splitmix64 — expands one proptest-drawn seed into a whole batch stream
/// (the vendored proptest shim only draws scalars).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A batch whose length, addresses, kinds, and arrivals come from `seed`.
fn random_batch(seed: &mut u64) -> Vec<MemRequest> {
    let n = (splitmix(seed) % 96) as usize;
    (0..n)
        .map(|_| {
            let addr = splitmix(seed) % 50_000;
            let arrival = Cycle(splitmix(seed) % 400);
            if splitmix(seed) & 1 == 1 {
                MemRequest::write(addr, arrival)
            } else {
                MemRequest::read(addr, arrival)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_batches_match_the_reference_scheduler(
        cfg_pick in 0usize..12,
        window in 1usize..24,
        n_batches in 1usize..6,
        seed in any::<u64>(),
    ) {
        let channels = [1u32, 2, 4][cfg_pick % 3];
        let banks = [2u32, 8][(cfg_pick / 3) % 2];
        let interleave = [Interleave::CacheLine, Interleave::Row][cfg_pick / 6];
        let cfg = DramConfig {
            mapping: AddressMapping::new(channels, banks, 128, interleave),
            reorder_window: window,
            ..DramConfig::default()
        };
        let mut fast = DramSystem::new(cfg);
        let mut naive = DramSystem::new(cfg);
        let mut stream = seed;
        for _ in 0..n_batches {
            let batch = random_batch(&mut stream);
            let a = fast.schedule_batch(&batch);
            let b = naive.schedule_batch_reference(&batch);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(fast.stats(), naive.stats());
        prop_assert_eq!(fast.latency_underflows(), naive.latency_underflows());
    }
}
