//! Shape regression tests: the qualitative claims of the paper's evaluation
//! hold at quick experiment scale. (The quantitative standard-scale results
//! live in EXPERIMENTS.md.)

use ir_oram::{RunLimit, Scheme, Simulation};
use iroram_experiments::{fig10, fig15, fig2, fig6, geomean, ExpOptions};
use iroram_trace::Bench;

fn opts() -> ExpOptions {
    ExpOptions::quick()
}

/// Fig. 10's headline, reduced: IR-ORAM beats Baseline on the memory-bound
/// benchmarks, and each standalone technique does not regress on average.
#[test]
fn fig10_shape_iroram_wins() {
    let opts = opts();
    let limit = RunLimit::mem_ops(6_000);
    let benches = [Bench::Mcf, Bench::Xz, Bench::Lbm];
    let mut iroram_speedups = Vec::new();
    let mut alloc_speedups = Vec::new();
    for bench in benches {
        let base = Simulation::run_bench(&opts.system(Scheme::Baseline), bench, limit);
        let ir = Simulation::run_bench(&opts.system(Scheme::IrOram), bench, limit);
        let alloc = Simulation::run_bench(&opts.system(Scheme::IrAlloc), bench, limit);
        iroram_speedups.push(ir.speedup_over(&base));
        alloc_speedups.push(alloc.speedup_over(&base));
    }
    let ir = geomean(&iroram_speedups);
    let alloc = geomean(&alloc_speedups);
    assert!(ir > 1.05, "IR-ORAM geomean speedup {ir:.3} ({iroram_speedups:?})");
    assert!(alloc > 1.0, "IR-Alloc geomean speedup {alloc:.3}");
}

/// Fig. 2's composition: data paths dominate, PosMap traffic is
/// non-negligible, Pos1 ≥ Pos2, dummies exist for light benchmarks.
#[test]
fn fig2_shape_path_mix() {
    let opts = opts();
    let cfg = opts.system(Scheme::Baseline);
    let heavy = fig2::mix_of(&Simulation::run_bench(
        &cfg,
        Bench::Xz,
        RunLimit::mem_ops(5_000),
    ));
    assert!(heavy.data > 0.3, "data paths dominate: {heavy:?}");
    assert!(heavy.pos1 >= heavy.pos2, "{heavy:?}");
    assert!(heavy.pos1 + heavy.pos2 > 0.05, "PosMap non-negligible: {heavy:?}");

    let light = fig2::mix_of(&Simulation::run_bench(
        &cfg,
        Bench::Xal,
        RunLimit::mem_ops(3_000),
    ));
    assert!(
        light.dummy > heavy.dummy,
        "light benchmarks have more dummies: {light:?} vs {heavy:?}"
    );
}

/// Fig. 6's claim: the tree top serves a disproportionate share of
/// requests relative to its size.
#[test]
fn fig6_shape_treetop_reuse() {
    let opts = opts();
    let h = fig6::collect(&opts);
    let levels = h.per_level.len();
    let top = levels * 2 / 5;
    let top_space_share = {
        let top_slots: u64 = (0..top).map(|l| (1u64 << l) * 4).sum();
        let all_slots: u64 = (0..levels).map(|l| (1u64 << l) * 4).sum();
        top_slots as f64 / all_slots as f64
    };
    let top_serve_share = h.top_fraction(top);
    assert!(
        top_serve_share > 10.0 * top_space_share,
        "top serves {top_serve_share:.3} with only {top_space_share:.4} of space"
    );
}

/// Fig. 15's claim: IR-DWB converts a visible share of dummies and lowers
/// the dummy fraction.
#[test]
fn fig15_shape_dummy_conversion() {
    let opts = opts();
    let rows = fig15::collect(&opts);
    let avg_dummy: f64 = rows.iter().map(|r| r.4).sum::<f64>() / rows.len() as f64;
    let avg_base_dummy: f64 = rows.iter().map(|r| r.5).sum::<f64>() / rows.len() as f64;
    let avg_conv: f64 = rows.iter().map(|r| r.3).sum::<f64>() / rows.len() as f64;
    assert!(
        avg_dummy < avg_base_dummy,
        "dummy share must drop: {avg_dummy:.3} vs {avg_base_dummy:.3}"
    );
    assert!(avg_conv > 0.0, "some slots must convert");
}

/// LLC-D's read-intensive pathology (Section VI-A): delayed remapping makes
/// mcf slower than the Baseline, because clean LLC evictions now cost
/// PosMap traffic.
#[test]
fn llcd_hurts_read_intensive_mcf() {
    let opts = opts();
    let limit = RunLimit::mem_ops(6_000);
    let base = Simulation::run_bench(&opts.system(Scheme::Baseline), Bench::Mcf, limit);
    let llcd = Simulation::run_bench(&opts.system(Scheme::LlcD), Bench::Mcf, limit);
    assert!(
        llcd.cycles > base.cycles,
        "LLC-D should slow mcf down ({} vs {})",
        llcd.cycles,
        base.cycles
    );
}

/// Fig. 10 companion claim: the improvements come from reduced memory
/// intensity — IR-ORAM moves fewer DRAM blocks than Baseline for the same
/// work.
#[test]
fn iroram_reduces_memory_intensity() {
    let opts = opts();
    let limit = RunLimit::mem_ops(5_000);
    let base = Simulation::run_bench(&opts.system(Scheme::Baseline), Bench::Mcf, limit);
    let ir = Simulation::run_bench(&opts.system(Scheme::IrOram), Bench::Mcf, limit);
    assert!(
        ir.dram.requests < base.dram.requests,
        "IR-ORAM {} vs Baseline {} DRAM requests",
        ir.dram.requests,
        base.dram.requests
    );
}

/// The full Fig. 10 pipeline runs end to end at quick scale and produces a
/// well-formed table (every scheme column, geomean row).
#[test]
fn fig10_table_renders() {
    let mut opts = opts();
    opts.mem_ops = 1_500;
    let data = fig10::collect(&opts);
    let table = fig10::render(&data);
    assert_eq!(table.rows.len(), data.benches.len() + 1);
    assert_eq!(table.headers.len(), fig10::FIG10_SCHEMES.len() + 1);
    // Baseline column is 1.000 everywhere.
    for row in &table.rows {
        assert_eq!(row[1], "1.000", "baseline normalization in {row:?}");
    }
}
