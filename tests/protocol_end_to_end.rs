//! End-to-end functional tests of the Path ORAM protocol across every
//! configuration axis: correctness (read-your-writes), structural
//! invariants, the delayed-remap lifecycle, and the Z-search algorithm.

use iroram_protocol::{
    AllocPreset, BlockAddr, OramConfig, PathOram, RemapPolicy, TreeTopMode, ZAllocation,
};
use iroram_sim_engine::SimRng;
use proptest::prelude::*;

fn config_matrix() -> Vec<OramConfig> {
    let mut out = Vec::new();
    for treetop in [
        TreeTopMode::None,
        TreeTopMode::Dedicated { levels: 3 },
        TreeTopMode::IrStash {
            levels: 3,
            sets: 16,
            ways: 4,
        },
    ] {
        for remap in [RemapPolicy::Immediate, RemapPolicy::Delayed] {
            for zalloc in [
                ZAllocation::uniform(8, 4),
                ZAllocation::preset(AllocPreset::IrAlloc4, 8, 3),
            ] {
                out.push(OramConfig {
                    treetop,
                    remap,
                    zalloc,
                    ..OramConfig::tiny()
                });
            }
        }
    }
    out
}

#[test]
fn read_your_writes_over_full_matrix() {
    for cfg in config_matrix() {
        let label = format!("{:?}/{:?}", cfg.treetop, cfg.remap);
        let mut oram = PathOram::new(cfg);
        let n = oram.config().data_blocks;
        let mut rng = SimRng::seed_from(77);
        let mut model = std::collections::HashMap::new();
        for i in 0..600u64 {
            let addr = rng.next_below(n);
            if rng.chance(0.5) {
                oram.write(addr, i);
                model.insert(addr, i);
            } else {
                let got = oram.read(addr);
                let want = model.get(&addr).copied().unwrap_or(0);
                assert_eq!(got, want, "{label}: addr {addr} at op {i}");
            }
        }
        oram.check_invariants()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn stash_stays_bounded_under_uniform_load() {
    let mut oram = PathOram::new(OramConfig::tiny());
    let n = oram.config().data_blocks;
    let mut rng = SimRng::seed_from(5);
    for _ in 0..3_000 {
        oram.run_access(BlockAddr(rng.next_below(n)), None);
    }
    // Background eviction keeps the stash near its soft capacity; the hard
    // bound here is capacity + one path's worth of blocks.
    let cap = oram.config().stash_capacity;
    assert!(
        oram.stash_peak() <= cap + 40,
        "stash peaked at {} (cap {cap})",
        oram.stash_peak()
    );
}

#[test]
fn delayed_remap_lifecycle_is_consistent() {
    let cfg = OramConfig {
        remap: RemapPolicy::Delayed,
        ..OramConfig::tiny()
    };
    let mut oram = PathOram::new(cfg);
    let n = oram.config().data_blocks;
    let mut rng = SimRng::seed_from(9);
    // Access (escrow) a set of blocks, then write them all back.
    let addrs: Vec<u64> = (0..64).map(|_| rng.next_below(n)).collect();
    for &a in &addrs {
        oram.write(a, a + 1);
    }
    let escrowed: Vec<BlockAddr> = oram.escrowed().collect();
    assert!(!escrowed.is_empty());
    for a in escrowed {
        oram.delayed_writeback(a).unwrap();
    }
    assert_eq!(oram.escrowed().count(), 0);
    oram.check_invariants().unwrap();
    for &a in &addrs {
        assert_eq!(oram.read(a), a + 1);
    }
}

#[test]
fn posmap_traffic_shrinks_with_locality() {
    let mut oram = PathOram::new(OramConfig::tiny());
    // Sequential sweep: 16 consecutive blocks share one PosMap1 block.
    for a in 0..128u64 {
        oram.read(a);
    }
    let seq = oram.stats().posmap_paths();
    oram.reset_stats();
    let mut rng = SimRng::seed_from(31);
    let n = oram.config().data_blocks;
    for _ in 0..128 {
        oram.read(rng.next_below(n));
    }
    let rnd = oram.stats().posmap_paths();
    assert!(
        seq < rnd,
        "sequential access ({seq} PosMap paths) must beat random ({rnd})"
    );
}

#[test]
fn greedy_z_search_respects_constraints() {
    let probe = OramConfig {
        levels: 9,
        data_blocks: 1 << 10,
        zalloc: ZAllocation::uniform(9, 4),
        treetop: TreeTopMode::Dedicated { levels: 3 },
        ..OramConfig::tiny()
    };
    let outcome = ZAllocation::greedy_search(&probe, 2_000, 0.01, 0.15, 42);
    let chosen = &outcome.chosen;
    assert!(chosen.space_reduction() <= 0.01, "space constraint");
    assert!(
        outcome.chosen_bg_evictions as f64
            <= (outcome.baseline_bg_evictions as f64 * 1.15).ceil() + 1.0,
        "bg-eviction constraint: {} vs baseline {}",
        outcome.chosen_bg_evictions,
        outcome.baseline_bg_evictions
    );
    // The search should actually shrink something.
    assert!(
        chosen.path_len(3) < ZAllocation::uniform(9, 4).path_len(3),
        "search found no reduction"
    );
    assert!(outcome.candidates_evaluated >= 2);
    // And never the leaf level.
    assert_eq!(chosen.z_of(8), 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random operation sequences preserve both data and structure.
    #[test]
    fn prop_random_ops_sound(seed in 0u64..1000, ops in 50usize..200) {
        let mut oram = PathOram::new(OramConfig::tiny());
        let n = oram.config().data_blocks;
        let mut rng = SimRng::seed_from(seed);
        let mut model = std::collections::HashMap::new();
        for i in 0..ops as u64 {
            let addr = rng.next_below(n);
            if rng.chance(0.4) {
                oram.write(addr, i ^ seed);
                model.insert(addr, i ^ seed);
            } else {
                let want = model.get(&addr).copied().unwrap_or(0);
                prop_assert_eq!(oram.read(addr), want);
            }
        }
        prop_assert!(oram.check_invariants().is_ok());
    }

    /// Dummy paths never corrupt data.
    #[test]
    fn prop_dummies_preserve_data(seed in 0u64..1000) {
        let mut oram = PathOram::new(OramConfig::tiny());
        let mut rng = SimRng::seed_from(seed);
        let addrs: Vec<u64> = (0..16).map(|_| rng.next_below(256)).collect();
        for (i, &a) in addrs.iter().enumerate() {
            oram.write(a, i as u64 + 1000);
        }
        for _ in 0..100 {
            oram.dummy_path();
        }
        prop_assert!(oram.check_invariants().is_ok());
        let mut expected: std::collections::HashMap<u64, u64> = Default::default();
        for (i, &a) in addrs.iter().enumerate() {
            expected.insert(a, i as u64 + 1000); // later writes win
        }
        for (&a, &v) in &expected {
            prop_assert_eq!(oram.read(a), v);
        }
    }
}
