//! The KV service determinism contract: a fixed seed produces
//! byte-identical replies, per-shard ORAM reports, and logical contents
//! at *any* worker count. `workers <= 1` is the serial reference twin;
//! threaded runs must match it exactly, because operations are
//! partitioned to shards before any worker runs and each shard's state
//! is private to it.

use iroram_kv::{FlushOutcome, KvConfig, KvOp, KvService};
use iroram_sim_engine::SimRng;

/// A mixed workload: load phase then skewed gets/puts/deletes.
fn drive(workers: usize) -> (Vec<FlushOutcome>, KvService) {
    let mut cfg = KvConfig::for_keys(2_000, 4);
    cfg.workers = workers;
    cfg.batch_ops = 16;
    let mut kv = KvService::new(cfg);
    let mut rng = SimRng::seed_from(0xDE7E_2412);
    let mut outcomes = Vec::new();
    // Load.
    for k in 1..=1_500u32 {
        kv.submit(KvOp::Put { key: k, value: k.wrapping_mul(31) }).unwrap();
    }
    outcomes.push(kv.flush());
    // Mixed phases.
    for _ in 0..3 {
        for _ in 0..600 {
            let key = 1 + rng.next_below(2_000) as u32;
            let op = match rng.next_below(10) {
                0..=4 => KvOp::Get { key },
                5..=8 => KvOp::Put { key, value: rng.next_u64() as u32 },
                _ => KvOp::Delete { key },
            };
            kv.submit(op).unwrap();
        }
        outcomes.push(kv.flush());
    }
    (outcomes, kv)
}

#[test]
fn replies_reports_and_contents_are_identical_at_any_worker_count() {
    let (ref_outcomes, mut ref_kv) = drive(1);
    let ref_reports = ref_kv.reports();
    let ref_dump = ref_kv.dump();
    for workers in [2, 3, 4, 8] {
        let (outcomes, mut kv) = drive(workers);
        for (i, (a, b)) in ref_outcomes.iter().zip(&outcomes).enumerate() {
            assert_eq!(a.replies, b.replies, "flush {i} replies, workers={workers}");
            assert_eq!(
                a.shard_ops, b.shard_ops,
                "flush {i} shard op partition, workers={workers}"
            );
        }
        // Per-shard reports carry the full ORAM protocol counters: any
        // scheduling leak into protocol state shows up here.
        assert_eq!(ref_reports, kv.reports(), "reports, workers={workers}");
        assert_eq!(ref_dump, kv.dump(), "contents, workers={workers}");
    }
}

#[test]
fn clock_injection_changes_no_deterministic_output() {
    let run = |clocked: bool| {
        let mut cfg = KvConfig::for_keys(1_000, 2);
        cfg.workers = 2;
        let mut kv = KvService::new(cfg);
        for k in 1..=800u32 {
            kv.submit(KvOp::Put { key: k, value: k ^ 0xABCD }).unwrap();
        }
        for k in 1..=400u32 {
            kv.submit(KvOp::Get { key: k * 2 }).unwrap();
        }
        // A fake monotone clock stands in for wall time: deterministic
        // here, but exercising the exact code path kv_bench uses.
        let counter = std::sync::atomic::AtomicU64::new(0);
        let clock = move || counter.fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        let outcome = if clocked {
            kv.flush_with_clock(Some(&clock))
        } else {
            kv.flush()
        };
        (outcome, kv.reports())
    };
    let (clocked, clocked_reports) = run(true);
    let (plain, plain_reports) = run(false);
    assert_eq!(clocked.replies, plain.replies);
    assert_eq!(clocked_reports, plain_reports);
    // And the clocked run actually measured something.
    assert!(clocked.latencies.iter().any(|&l| l > 0));
    assert!(clocked.shard_busy.iter().any(|&b| b > 0));
    assert!(plain.latencies.iter().all(|&l| l == 0));
}

#[test]
fn shard_partition_is_submission_time_stable() {
    // The same ops submitted in a different interleaving still land on
    // the same shards with the same per-shard order (sequence numbers
    // differ, shard-local op order of any single shard does not change
    // relative order of its own ops).
    let mut kv = KvService::new(KvConfig::for_keys(1_000, 4));
    let mut seqs = Vec::new();
    for k in 1..=100u32 {
        seqs.push(kv.submit(KvOp::Put { key: k, value: k }).unwrap());
    }
    let shard_ops = kv.flush().shard_ops;
    assert_eq!(shard_ops.iter().sum::<u64>(), 100);
    assert!(
        shard_ops.iter().filter(|&&n| n > 0).count() > 1,
        "directory must actually spread keys: {shard_ops:?}"
    );
    assert_eq!(seqs, (0..100).collect::<Vec<u64>>());
}
