//! Cross-substrate integration: the DRAM model, address layouts, caches and
//! trace generators composing the way the full system relies on.

use iroram_cache::{HierarchyConfig, MemoryHierarchy};
use iroram_dram::{DramConfig, DramSystem, MemRequest, SubtreeLayout};
use iroram_sim_engine::{ClockRatio, Cycle, SimRng};
use iroram_trace::{Bench, WorkloadGen};

/// The subtree layout's whole purpose: path accesses enjoy far better
/// row-buffer locality than random block scatter.
#[test]
fn subtree_layout_beats_level_scatter_on_row_hits() {
    let z = vec![4u32; 15];
    let layout = SubtreeLayout::new(&z, 4);
    let mut rng = SimRng::seed_from(5);

    // Path-ordered traffic through the subtree layout.
    let mut dram = DramSystem::new(DramConfig::default());
    for _ in 0..200 {
        let leaf = rng.next_below(1 << 14);
        let reqs: Vec<MemRequest> = layout
            .path_slots(leaf, 0)
            .into_iter()
            .map(|a| MemRequest::read(a, Cycle(0)))
            .collect();
        dram.schedule_batch(&reqs);
    }
    let subtree_hits = dram.stats().row_hit_rate();

    // The same volume of uniformly random lines.
    let mut dram2 = DramSystem::new(DramConfig::default());
    let total = layout.total_lines();
    for _ in 0..200 {
        let reqs: Vec<MemRequest> = (0..60)
            .map(|_| MemRequest::read(rng.next_below(total), Cycle(0)))
            .collect();
        dram2.schedule_batch(&reqs);
    }
    let random_hits = dram2.stats().row_hit_rate();

    assert!(
        subtree_hits > random_hits + 0.2,
        "subtree {subtree_hits:.2} vs random {random_hits:.2}"
    );
}

/// IR-Alloc's shorter paths translate directly into shorter DRAM service:
/// the memory-intensity mechanism of the whole paper.
#[test]
fn shorter_paths_finish_sooner() {
    let uniform = SubtreeLayout::new(&[4u32; 15], 4);
    let mut shrunk_z = vec![4u32; 15];
    for z in shrunk_z.iter_mut().take(10).skip(5) {
        *z = 1;
    }
    let shrunk = SubtreeLayout::new(&shrunk_z, 4);
    assert!(shrunk.path_len(0) < uniform.path_len(0));

    let service = |layout: &SubtreeLayout| {
        let mut dram = DramSystem::new(DramConfig::default());
        let mut rng = SimRng::seed_from(8);
        let mut done = Cycle::ZERO;
        for i in 0..100u64 {
            let leaf = rng.next_below(1 << 14);
            let at = Cycle(i * 200);
            let reads: Vec<MemRequest> = layout
                .path_slots(leaf, 0)
                .into_iter()
                .map(|a| MemRequest::read(a, at))
                .collect();
            done = dram.schedule_batch_done(&reads, at);
        }
        done
    };
    assert!(
        service(&shrunk) < service(&uniform),
        "fewer blocks per path must reduce service time"
    );
}

/// Clock-domain conversion round-trips through the DRAM path: a CPU-time
/// arrival scheduled in DRAM cycles completes at a CPU time no earlier than
/// it arrived.
#[test]
fn clock_conversion_is_causal() {
    let clock = ClockRatio::cpu_dram_default();
    let mut dram = DramSystem::new(DramConfig::default());
    for cpu_t in [0u64, 999, 1000, 12_345] {
        let arrival = clock.fast_to_slow(Cycle(cpu_t));
        let done = dram.schedule_batch_done(&[MemRequest::read(cpu_t, arrival)], arrival);
        let done_cpu = clock.slow_to_fast(done);
        assert!(
            done_cpu >= Cycle(cpu_t),
            "completion {done_cpu:?} precedes arrival {cpu_t}"
        );
    }
}

/// The workload generators drive the cache hierarchy into the regimes the
/// benchmarks represent: streaming writers produce dirty write-backs,
/// pointer chasers produce clean read misses.
#[test]
fn workloads_exercise_cache_regimes() {
    let run = |bench: Bench| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::scaled(64));
        let mut gen = WorkloadGen::for_bench(bench, 1 << 16, 3);
        for _ in 0..60_000 {
            let r = gen.next_record();
            h.access(r.addr, r.is_write);
        }
        *h.stats()
    };
    let lbm = run(Bench::Lbm);
    let mcf = run(Bench::Mcf);
    assert!(
        lbm.dirty_writebacks > mcf.dirty_writebacks * 3,
        "lbm {} vs mcf {} dirty write-backs",
        lbm.dirty_writebacks,
        mcf.dirty_writebacks
    );
    assert!(
        mcf.read_misses > mcf.write_misses * 10,
        "mcf should be read-dominated ({} vs {})",
        mcf.read_misses,
        mcf.write_misses
    );
}

/// MPKI intensity ordering survives the full cache stack (Table II's
/// qualitative content).
#[test]
fn mpki_ordering_matches_table2() {
    let mpki = |bench: Bench| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::scaled(64));
        let mut gen = WorkloadGen::for_bench(bench, 1 << 16, 9);
        let mut insts = 0u64;
        for _ in 0..60_000 {
            let r = gen.next_record();
            insts += r.gap as u64 + 1;
            h.access(r.addr, r.is_write);
        }
        (h.stats().misses) as f64 * 1000.0 / insts as f64
    };
    let xz = mpki(Bench::Xz);
    let gcc = mpki(Bench::Gcc);
    let xal = mpki(Bench::Xal);
    assert!(xz > 10.0 * gcc, "xz {xz:.2} vs gcc {gcc:.2}");
    assert!(xz > 10.0 * xal, "xz {xz:.2} vs xal {xal:.2}");
    assert!(gcc < 5.0, "gcc should be light ({gcc:.2})");
}
