//! Robustness regressions: fault-injection determinism, integrity
//! detection guarantees, typed-error recovery, worker-pool poison
//! tolerance, and resume-journal equivalence.
//!
//! The contract under test: a seeded fault plan produces the *same* faults
//! at any `--jobs` value; zero-rate fault configs (and the always-on
//! integrity checksums) perturb nothing; detected corruption is repaired
//! with a bounded, explicit timing penalty; and an interrupted, resumed
//! sweep reports exactly what an uninterrupted one would.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

use ir_oram::{RunLimit, Scheme, SimError, Simulation, SystemConfig};
use iroram_cache::HierarchyConfig;
use iroram_experiments::runner::{par_map, run_cell_checked, run_matrix, ExpOptions};
use iroram_protocol::{TreeTopMode, ZAllocation};
use iroram_sim_engine::{FaultConfig, FaultPlan};
use iroram_trace::Bench;
use proptest::prelude::*;

/// The tiny-but-real full-system scale the sim tests use.
fn tiny(scheme: Scheme) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(scheme);
    cfg.oram.levels = 10;
    cfg.oram.data_blocks = 1 << 11;
    cfg.oram.zalloc = ZAllocation::uniform(10, 4);
    cfg.oram.treetop = TreeTopMode::Dedicated { levels: 4 };
    cfg.oram.plb_sets = 8;
    cfg.oram.plb_ways = 2;
    cfg.hierarchy = HierarchyConfig {
        l1_sets: 16,
        l1_assoc: 2,
        llc_sets: 64,
        llc_assoc: 4,
    };
    cfg.with_scheme(scheme)
}

fn low_faults() -> FaultConfig {
    let mut f = FaultConfig::none();
    f.dram_corruption = 0.01;
    f.bank_stall = 0.02;
    f.stash_storm = 0.005;
    f.trace_mangle = 0.005;
    f
}

#[test]
fn faulted_cells_are_identical_serial_and_parallel() {
    let cells: Vec<(Scheme, Bench)> = [Scheme::Baseline, Scheme::Rho, Scheme::IrOram]
        .iter()
        .flat_map(|&s| [Bench::Gcc, Bench::Mcf].iter().map(move |&b| (s, b)))
        .collect();
    let run = |jobs: usize| {
        par_map(jobs, cells.clone(), |(s, b)| {
            let mut cfg = tiny(s);
            cfg.faults = low_faults();
            Simulation::run_bench(&cfg, b, RunLimit::mem_ops(1_200))
        })
    };
    let serial = run(1);
    for jobs in [2, 8] {
        let par = run(jobs);
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "fault injection must be scheduling-independent (jobs={jobs})"
        );
    }
    // The faults actually fired, so the comparison was not vacuous.
    assert!(serial.iter().any(|r| r.faults.injected_corruptions > 0));
    assert!(serial.iter().any(|r| r.faults.bank_stalls > 0));
}

#[test]
fn zero_rate_faults_and_integrity_perturb_nothing() {
    for scheme in [Scheme::Baseline, Scheme::Rho, Scheme::IrOram] {
        // Default config: fault machinery compiled in, rates all zero,
        // integrity checksums maintained.
        let on = tiny(scheme);
        let mut off = tiny(scheme);
        off.oram.integrity = false;
        let r_on = Simulation::run_bench(&on, Bench::Gcc, RunLimit::mem_ops(1_500));
        let r_off = Simulation::run_bench(&off, Bench::Gcc, RunLimit::mem_ops(1_500));
        assert_eq!(
            format!("{r_on:?}"),
            format!("{r_off:?}"),
            "{scheme:?}: integrity checksums must not change any reported number"
        );
        assert_eq!(r_on.faults, ir_oram::FaultStats::default(), "{scheme:?}");
    }
}

#[test]
fn undetected_corruption_is_counted_when_integrity_is_off() {
    let mut cfg = tiny(Scheme::Baseline);
    cfg.faults.dram_corruption = 0.05;
    cfg.oram.integrity = false;
    let r = Simulation::run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000));
    assert!(r.faults.injected_corruptions > 0, "faults must fire");
    assert_eq!(r.faults.detected, 0, "nothing can be detected without checksums");
    assert!(
        r.faults.undetected > 0,
        "consumed corruption must be visible in the ledger"
    );

    // Same corruption stream with integrity on: all consumed corruption is
    // caught, repaired, and charged a penalty.
    let mut guarded = tiny(Scheme::Baseline);
    guarded.faults.dram_corruption = 0.05;
    let g = Simulation::run_bench(&guarded, Bench::Mcf, RunLimit::mem_ops(3_000));
    assert_eq!(g.faults.undetected, 0);
    assert!(g.faults.detected > 0);
    assert_eq!(g.faults.recovered, g.faults.detected);
    assert!(g.faults.refetch_penalty_cycles > 0);
}

#[test]
fn stash_hard_limit_is_a_typed_transient_error_with_bounded_retry() {
    let mut cfg = tiny(Scheme::Baseline);
    cfg.stash_hard_limit = 1;
    let err = Simulation::try_run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000))
        .expect_err("a 1-block hard limit must overflow");
    assert!(
        matches!(err, SimError::StashOverflow { hard_limit: 1, .. }),
        "wrong error: {err}"
    );
    assert!(err.is_transient());

    // Without an active fault plan a retry would replay the identical
    // failure, so the cell fails on the first attempt...
    let e = run_cell_checked(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000)).unwrap_err();
    assert_eq!(e.attempts, 1);
    assert!(e.transient);
    // ...while with faults active the bounded retry runs fresh fault
    // streams before giving up.
    cfg.faults = low_faults();
    let e = run_cell_checked(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000)).unwrap_err();
    assert_eq!(
        e.attempts,
        iroram_experiments::MAX_CELL_RETRIES + 1,
        "retries must be bounded: {e}"
    );
}

#[test]
fn par_map_survives_a_panicking_closure_at_every_worker_count() {
    for jobs in [1usize, 2, 8] {
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(jobs, (0..16u64).collect::<Vec<_>>(), |x| {
                if x == 3 {
                    panic!("injected cell panic");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                x * 2
            })
        }));
        assert!(result.is_err(), "the panic must propagate (jobs={jobs})");
        if jobs > 1 {
            // Poison-tolerant locks: the other workers finish the batch
            // before the panic is re-raised.
            assert_eq!(
                completed.load(Ordering::SeqCst),
                15,
                "surviving workers must drain the batch (jobs={jobs})"
            );
        }
    }
}

#[test]
fn resumed_sweep_equals_uninterrupted_sweep() {
    let dir = std::env::temp_dir().join(format!("iroram-resume-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    std::fs::remove_file(&path).ok();
    std::env::set_var("IRORAM_RESUME_PATH", &path);

    let mut opts = ExpOptions::quick();
    opts.mem_ops = 1_000;
    opts.timed_levels = 10;
    opts.jobs = 1;
    let schemes = [Scheme::Baseline, Scheme::IrOram];
    let benches = [Bench::Gcc, Bench::Mcf, Bench::Lbm];

    // The reference: no journal involved.
    let uninterrupted = run_matrix(&opts, &schemes, &benches);

    // A journaled run that "dies" after three cells: simulate the kill by
    // truncating the journal to its first three lines.
    let mut jopts = opts;
    jopts.resume = true;
    let full = run_matrix(&jopts, &schemes, &benches);
    assert_eq!(format!("{uninterrupted:?}"), format!("{full:?}"));
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 6, "every cell journaled once");
    let partial: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, partial).unwrap();

    // The resumed run answers three cells from the journal, simulates the
    // other three, and must be byte-identical to the uninterrupted sweep.
    let resumed = run_matrix(&jopts, &schemes, &benches);
    assert_eq!(
        format!("{uninterrupted:?}"),
        format!("{resumed:?}"),
        "resume must reproduce the uninterrupted results exactly"
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 6, "only the missing cells re-ran");

    std::env::remove_var("IRORAM_RESUME_PATH");
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two plans built from the same config and base seed emit the same
    /// decision sequence; a different attempt number emits a fresh one.
    #[test]
    fn fault_plan_decisions_are_seed_deterministic(
        seed in any::<u64>(),
        base in any::<u64>(),
        corruption_ppm in 0u64..200_000,
        stall_ppm in 0u64..200_000,
        storm_ppm in 0u64..100_000,
        mangle_ppm in 0u64..200_000,
    ) {
        let mut cfg = FaultConfig::none();
        cfg.seed = seed;
        cfg.dram_corruption = corruption_ppm as f64 / 1e6;
        cfg.bank_stall = stall_ppm as f64 / 1e6;
        cfg.stash_storm = storm_ppm as f64 / 1e6;
        cfg.trace_mangle = mangle_ppm as f64 / 1e6;
        type Decision = (Option<(u64, u64)>, u64, bool, Option<u64>);
        let drive = |cfg: &FaultConfig| -> Vec<Decision> {
            match FaultPlan::new(cfg, base) {
                None => Vec::new(),
                Some(mut p) => (0..200)
                    .map(|_| (p.corrupt_line(), p.bank_stall(), p.storm_active(), p.mangle_record()))
                    .collect(),
            }
        };
        let a = drive(&cfg);
        let b = drive(&cfg);
        prop_assert_eq!(&a, &b, "same config must replay the same faults");
        if cfg.is_active() {
            prop_assert!(!a.is_empty());
            let mut retry = cfg.clone();
            retry.attempt = 1;
            let c = drive(&retry);
            prop_assert_ne!(&a, &c, "a retry must see a fresh fault stream");
        } else {
            prop_assert!(a.is_empty(), "zero rates must build no plan");
        }
    }

    /// Zero-rate configs never perturb a full-system run, whatever the seed.
    #[test]
    fn zero_rate_plan_is_always_inert(seed in any::<u64>(), base in any::<u64>()) {
        let mut cfg = FaultConfig::none();
        cfg.seed = seed;
        prop_assert!(FaultPlan::new(&cfg, base).is_none());
    }
}
