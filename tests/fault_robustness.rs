//! Robustness regressions: fault-injection determinism, integrity
//! detection guarantees, typed-error recovery, worker-pool poison
//! tolerance, and resume-journal equivalence.
//!
//! The contract under test: a seeded fault plan produces the *same* faults
//! at any `--jobs` value; zero-rate fault configs (and the always-on
//! integrity checksums) perturb nothing; detected corruption is repaired
//! with a bounded, explicit timing penalty; and an interrupted, resumed
//! sweep reports exactly what an uninterrupted one would.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

use ir_oram::{RunLimit, Scheme, SimError, Simulation, SystemConfig};
use iroram_cache::HierarchyConfig;
use iroram_experiments::runner::{par_map, run_cell_checked, run_matrix, ExpOptions};
use iroram_protocol::{TreeTopMode, ZAllocation};
use iroram_sim_engine::{FaultConfig, FaultPlan};
use iroram_trace::Bench;
use proptest::prelude::*;

/// The tiny-but-real full-system scale the sim tests use.
fn tiny(scheme: Scheme) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(scheme);
    cfg.oram.levels = 10;
    cfg.oram.data_blocks = 1 << 11;
    cfg.oram.zalloc = ZAllocation::uniform(10, 4);
    cfg.oram.treetop = TreeTopMode::Dedicated { levels: 4 };
    cfg.oram.plb_sets = 8;
    cfg.oram.plb_ways = 2;
    cfg.hierarchy = HierarchyConfig {
        l1_sets: 16,
        l1_assoc: 2,
        llc_sets: 64,
        llc_assoc: 4,
    };
    cfg.with_scheme(scheme)
}

fn low_faults() -> FaultConfig {
    let mut f = FaultConfig::none();
    f.dram_corruption = 0.01;
    f.bank_stall = 0.02;
    f.stash_storm = 0.005;
    f.trace_mangle = 0.005;
    f
}

#[test]
fn faulted_cells_are_identical_serial_and_parallel() {
    let cells: Vec<(Scheme, Bench)> = [Scheme::Baseline, Scheme::Rho, Scheme::IrOram]
        .iter()
        .flat_map(|&s| [Bench::Gcc, Bench::Mcf].iter().map(move |&b| (s, b)))
        .collect();
    let run = |jobs: usize| {
        par_map(jobs, cells.clone(), |(s, b)| {
            let mut cfg = tiny(s);
            cfg.faults = low_faults();
            Simulation::run_bench(&cfg, b, RunLimit::mem_ops(1_200))
        })
    };
    let serial = run(1);
    for jobs in [2, 8] {
        let par = run(jobs);
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "fault injection must be scheduling-independent (jobs={jobs})"
        );
    }
    // The faults actually fired, so the comparison was not vacuous.
    assert!(serial.iter().any(|r| r.faults.injected_corruptions > 0));
    assert!(serial.iter().any(|r| r.faults.bank_stalls > 0));
}

#[test]
fn zero_rate_faults_and_integrity_perturb_nothing() {
    for scheme in [Scheme::Baseline, Scheme::Rho, Scheme::IrOram] {
        // Default config: fault machinery compiled in, rates all zero,
        // integrity checksums maintained.
        let on = tiny(scheme);
        let mut off = tiny(scheme);
        off.oram.integrity = false;
        let r_on = Simulation::run_bench(&on, Bench::Gcc, RunLimit::mem_ops(1_500));
        let r_off = Simulation::run_bench(&off, Bench::Gcc, RunLimit::mem_ops(1_500));
        assert_eq!(
            format!("{r_on:?}"),
            format!("{r_off:?}"),
            "{scheme:?}: integrity checksums must not change any reported number"
        );
        assert_eq!(r_on.faults, ir_oram::FaultStats::default(), "{scheme:?}");
    }
}

#[test]
fn undetected_corruption_is_counted_when_integrity_is_off() {
    let mut cfg = tiny(Scheme::Baseline);
    cfg.faults.dram_corruption = 0.05;
    cfg.oram.integrity = false;
    let r = Simulation::run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000));
    assert!(r.faults.injected_corruptions > 0, "faults must fire");
    assert_eq!(r.faults.detected, 0, "nothing can be detected without checksums");
    assert!(
        r.faults.undetected > 0,
        "consumed corruption must be visible in the ledger"
    );

    // Same corruption stream with integrity on: all consumed corruption is
    // caught, repaired, and charged a penalty.
    let mut guarded = tiny(Scheme::Baseline);
    guarded.faults.dram_corruption = 0.05;
    let g = Simulation::run_bench(&guarded, Bench::Mcf, RunLimit::mem_ops(3_000));
    assert_eq!(g.faults.undetected, 0);
    assert!(g.faults.detected > 0);
    assert_eq!(g.faults.recovered, g.faults.detected);
    assert!(g.faults.refetch_penalty_cycles > 0);
}

#[test]
fn tight_hard_limit_degrades_gracefully_without_faults() {
    // A 1-block hard limit no longer kills the run outright: over the
    // degradation watermark new-work admission throttles so background
    // eviction can drain, and the bounded overflow grace absorbs short
    // excursions past the limit. The run completes, and the degradation is
    // visible (and deterministic) in the report.
    let mut cfg = tiny(Scheme::Baseline);
    cfg.stash_hard_limit = 1;
    let r = Simulation::try_run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000))
        .expect("graceful degradation must absorb a tight hard limit");
    assert!(r.stash.degraded_slots > 0, "degraded slots must be counted");
    assert!(
        r.stash.throttled_admissions > 0,
        "the admission throttle must have deferred work"
    );
    let r2 = Simulation::try_run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000)).unwrap();
    assert_eq!(
        format!("{r:?}"),
        format!("{r2:?}"),
        "degradation must be deterministic"
    );

    // An untightened run never crosses the watermark: degradation is
    // report-invisible on clean configurations.
    let clean = Simulation::try_run_bench(
        &tiny(Scheme::Baseline),
        Bench::Mcf,
        RunLimit::mem_ops(3_000),
    )
    .unwrap();
    assert_eq!(clean.stash.degraded_slots, 0);
    assert_eq!(clean.stash.throttled_admissions, 0);
}

/// A scale where background eviction is the *only* stash drain: Z=2
/// buckets (the classic unstable Path ORAM regime), a 4-block soft stash,
/// timing protection off (no dummy-path write-backs), and a hard limit
/// just above the soft capacity. Healthy runs drain via background
/// eviction; a storm that suppresses it pins the stash over the limit.
fn pinned_stash(scheme: Scheme) -> SystemConfig {
    let mut cfg = tiny(scheme);
    cfg.oram.data_blocks = 1 << 10;
    cfg.oram.zalloc = ZAllocation::uniform(10, 2);
    cfg.oram.stash_capacity = 4;
    cfg.stash_hard_limit = 6;
    cfg.timing_protection = false;
    cfg
}

#[test]
fn stash_hard_limit_is_a_typed_transient_error_with_bounded_retry() {
    // A permanent fault storm suppresses background eviction, so the
    // degradation path cannot drain the stash: once it sits over the hard
    // limit past the grace window, the typed transient error fires.
    let mut cfg = pinned_stash(Scheme::Baseline);
    cfg.faults.stash_storm = 1.0;
    cfg.faults.storm_slots = 5_000;
    let err = Simulation::try_run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000))
        .expect_err("a storm-pinned stash must overflow past the grace window");
    assert!(
        matches!(err, SimError::StashOverflow { hard_limit: 6, .. }),
        "wrong error: {err}"
    );
    assert!(err.is_transient());

    // The error is storm-caused, not a property of the tight config: the
    // same scale without the storm completes (degraded but alive).
    let calm = Simulation::try_run_bench(
        &pinned_stash(Scheme::Baseline),
        Bench::Mcf,
        RunLimit::mem_ops(3_000),
    )
    .expect("without the storm, background eviction keeps the stash bounded");
    assert!(calm.stash.degraded_slots > 0);

    // With faults active the bounded retry runs fresh fault streams before
    // giving up; a rate-1.0 storm dooms every attempt.
    let e = run_cell_checked(&cfg, Bench::Mcf, RunLimit::mem_ops(3_000)).unwrap_err();
    assert!(e.transient);
    assert_eq!(
        e.attempts,
        iroram_experiments::MAX_CELL_RETRIES + 1,
        "retries must be bounded: {e}"
    );
}

#[test]
fn par_map_survives_a_panicking_closure_at_every_worker_count() {
    for jobs in [1usize, 2, 8] {
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(jobs, (0..16u64).collect::<Vec<_>>(), |x| {
                if x == 3 {
                    panic!("injected cell panic");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                x * 2
            })
        }));
        assert!(result.is_err(), "the panic must propagate (jobs={jobs})");
        if jobs > 1 {
            // Poison-tolerant locks: the other workers finish the batch
            // before the panic is re-raised.
            assert_eq!(
                completed.load(Ordering::SeqCst),
                15,
                "surviving workers must drain the batch (jobs={jobs})"
            );
        }
    }
}

#[test]
fn resumed_sweep_equals_uninterrupted_sweep() {
    let dir = std::env::temp_dir().join(format!("iroram-resume-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    std::fs::remove_file(&path).ok();
    std::env::set_var("IRORAM_RESUME_PATH", &path);

    let mut opts = ExpOptions::quick();
    opts.mem_ops = 1_000;
    opts.timed_levels = 10;
    opts.jobs = 1;
    let schemes = [Scheme::Baseline, Scheme::IrOram];
    let benches = [Bench::Gcc, Bench::Mcf, Bench::Lbm];

    // The reference: no journal involved.
    let uninterrupted = run_matrix(&opts, &schemes, &benches);

    // A journaled run that "dies" after three cells: simulate the kill by
    // truncating the journal to its first three lines.
    let mut jopts = opts;
    jopts.resume = true;
    let full = run_matrix(&jopts, &schemes, &benches);
    assert_eq!(format!("{uninterrupted:?}"), format!("{full:?}"));
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 6, "every cell journaled once");
    let partial: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, partial).unwrap();

    // The resumed run answers three cells from the journal, simulates the
    // other three, and must be byte-identical to the uninterrupted sweep.
    let resumed = run_matrix(&jopts, &schemes, &benches);
    assert_eq!(
        format!("{uninterrupted:?}"),
        format!("{resumed:?}"),
        "resume must reproduce the uninterrupted results exactly"
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 6, "only the missing cells re-ran");

    std::env::remove_var("IRORAM_RESUME_PATH");
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two plans built from the same config and base seed emit the same
    /// decision sequence; a different attempt number emits a fresh one.
    #[test]
    fn fault_plan_decisions_are_seed_deterministic(
        seed in any::<u64>(),
        base in any::<u64>(),
        corruption_ppm in 0u64..200_000,
        stall_ppm in 0u64..200_000,
        storm_ppm in 0u64..100_000,
        mangle_ppm in 0u64..200_000,
    ) {
        let mut cfg = FaultConfig::none();
        cfg.seed = seed;
        cfg.dram_corruption = corruption_ppm as f64 / 1e6;
        cfg.bank_stall = stall_ppm as f64 / 1e6;
        cfg.stash_storm = storm_ppm as f64 / 1e6;
        cfg.trace_mangle = mangle_ppm as f64 / 1e6;
        type Decision = (Option<(u64, u64)>, u64, bool, Option<u64>);
        let drive = |cfg: &FaultConfig| -> Vec<Decision> {
            match FaultPlan::new(cfg, base) {
                None => Vec::new(),
                Some(mut p) => (0..200)
                    .map(|_| (p.corrupt_line(), p.bank_stall(), p.storm_active(), p.mangle_record()))
                    .collect(),
            }
        };
        let a = drive(&cfg);
        let b = drive(&cfg);
        prop_assert_eq!(&a, &b, "same config must replay the same faults");
        if cfg.is_active() {
            prop_assert!(!a.is_empty());
            let mut retry = cfg.clone();
            retry.attempt = 1;
            let c = drive(&retry);
            prop_assert_ne!(&a, &c, "a retry must see a fresh fault stream");
        } else {
            prop_assert!(a.is_empty(), "zero rates must build no plan");
        }
    }

    /// Zero-rate configs never perturb a full-system run, whatever the seed.
    #[test]
    fn zero_rate_plan_is_always_inert(seed in any::<u64>(), base in any::<u64>()) {
        let mut cfg = FaultConfig::none();
        cfg.seed = seed;
        prop_assert!(FaultPlan::new(&cfg, base).is_none());
    }
}

/// Fault handling composed with the k-deep access pipeline and mid-run
/// checkpointing: a faulted depth-4 cell is deterministic, detects every
/// injected corruption, and a run resumed from its last mid-run snapshot
/// reports identically to the uninterrupted one.
#[test]
fn faulted_depth4_cells_are_deterministic_and_resume_equivalent() {
    use ir_oram::CheckpointSpec;
    use iroram_experiments::journal::fingerprint;
    use iroram_trace::WorkloadGen;

    for (i, scheme) in [Scheme::Baseline, Scheme::Rho].into_iter().enumerate() {
        let mut cfg = tiny(scheme);
        cfg.pipeline_depth = 4;
        cfg.checkpoint_interval = 8;
        cfg.faults = low_faults();
        let limit = RunLimit::mem_ops(1_500);
        let run = |spec: Option<&CheckpointSpec>| {
            let gen = WorkloadGen::for_bench(Bench::Gcc, cfg.data_blocks(), cfg.seed);
            let (r, _) = Simulation::try_run_checkpointed(&cfg, gen, limit, "gcc", spec)
                .expect("faulted depth-4 run");
            r
        };
        let a = run(None);
        let b = run(None);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "faulted depth-4 run must be deterministic"
        );
        assert_eq!(a.faults.undetected, 0, "undetected corruption at depth 4");

        let path = std::env::temp_dir().join(format!(
            "iroram-fault-depth4-{i}-{}.snap",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec {
            path: path.clone(),
            fingerprint: fingerprint(&cfg, Bench::Gcc, limit),
        };
        let ck = run(Some(&spec));
        assert_eq!(format!("{ck:?}"), format!("{a:?}"));
        assert!(path.exists(), "a mid-run snapshot must remain");
        let resumed = run(Some(&spec));
        assert_eq!(
            format!("{resumed:?}"),
            format!("{a:?}"),
            "resumed faulted depth-4 run diverged"
        );
        let _ = std::fs::remove_file(&path);
    }
}
