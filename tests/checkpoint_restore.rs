//! Crash-consistency regressions for the checkpoint/restore subsystem.
//!
//! The contract under test: a run that snapshots every N slots produces a
//! report identical to an unsnapshotted run; a run *resumed* from any
//! mid-run snapshot finishes with that same report (at every scheme and
//! pipeline depth); a controller saved mid-flight and restored into a
//! fresh twin is indistinguishable from the original from then on; and a
//! corrupted, truncated, or mismatched snapshot surfaces as a typed
//! [`SimError::Snapshot`], never a panic or silent misresume.

use std::path::PathBuf;

use ir_oram::{
    CheckpointSpec, OramRequest, RhoController, RunLimit, Scheme, SimError, Simulation,
    SystemConfig, TimedController,
};
use iroram_cache::{HierarchyConfig, MemoryHierarchy};
use iroram_protocol::{BlockAddr, TreeTopMode, ZAllocation};
use iroram_sim_engine::{checkpoint, Cycle, SnapError, SnapReader, SnapWriter};
use iroram_trace::{Bench, WorkloadGen};
use proptest::prelude::*;

/// The tiny-but-real full-system scale the sim tests use.
fn tiny(scheme: Scheme) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(scheme);
    cfg.oram.levels = 10;
    cfg.oram.data_blocks = 1 << 11;
    cfg.oram.zalloc = ZAllocation::uniform(10, 4);
    cfg.oram.treetop = TreeTopMode::Dedicated { levels: 4 };
    cfg.oram.plb_sets = 8;
    cfg.oram.plb_ways = 2;
    cfg.hierarchy = HierarchyConfig {
        l1_sets: 16,
        l1_assoc: 2,
        llc_sets: 64,
        llc_assoc: 4,
    };
    cfg.with_scheme(scheme)
}

/// A unique snapshot path under the system temp dir (no tempfile dep).
fn snap_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("iroram-ckpt-tests");
    std::fs::create_dir_all(&dir).expect("create snapshot test dir");
    dir.join(format!("{tag}-{}.snap", std::process::id()))
}

fn run_plain(cfg: &SystemConfig, bench: Bench, limit: RunLimit) -> String {
    let r = Simulation::try_run_bench(cfg, bench, limit).expect("plain run");
    format!("{r:?}")
}

fn run_ckpt(cfg: &SystemConfig, bench: Bench, limit: RunLimit, spec: &CheckpointSpec) -> String {
    let gen = WorkloadGen::for_bench(bench, cfg.data_blocks(), cfg.seed);
    let (r, _) = Simulation::try_run_checkpointed(cfg, gen, limit, bench.name(), Some(spec))
        .expect("checkpointed run");
    format!("{r:?}")
}

/// One full equivalence cycle at a given scheme and pipeline depth:
/// checkpointing must not perturb the report, and resuming from the last
/// mid-run snapshot must reproduce the uninterrupted report exactly.
fn assert_resume_equivalence(scheme: Scheme, depth: u32, interval: u64, tag: &str) {
    let mut cfg = tiny(scheme);
    cfg.pipeline_depth = depth;
    cfg.checkpoint_interval = interval;
    let limit = RunLimit::mem_ops(1_500);
    let straight = run_plain(&cfg, Bench::Gcc, limit);

    let spec = CheckpointSpec {
        path: snap_path(tag),
        fingerprint: 0x1207_0000 ^ u64::from(depth) ^ interval << 8,
    };
    let _ = std::fs::remove_file(&spec.path);
    let with_ckpt = run_ckpt(&cfg, Bench::Gcc, limit, &spec);
    assert_eq!(
        with_ckpt, straight,
        "{scheme:?}/depth {depth}: snapshotting must not perturb the run"
    );

    // The completed run leaves its last mid-run snapshot behind; it must
    // be a genuine mid-run cut, and resuming from it must land on the
    // very same report.
    let header = checkpoint::read_header(&spec.path)
        .expect("snapshot header readable")
        .expect("a mid-run snapshot must remain after the run");
    assert!(header.slots_done > 0, "snapshot taken before any progress");
    assert_eq!(header.fingerprint, spec.fingerprint);
    let resumed = run_ckpt(&cfg, Bench::Gcc, limit, &spec);
    assert_eq!(
        resumed, straight,
        "{scheme:?}/depth {depth}: resumed run diverged from the uninterrupted one"
    );
    let _ = std::fs::remove_file(&spec.path);
}

#[test]
fn resume_equals_straight_through_across_schemes_and_depths() {
    for (i, scheme) in [Scheme::Baseline, Scheme::Rho, Scheme::IrOram, Scheme::LlcD]
        .into_iter()
        .enumerate()
    {
        for depth in [1u32, 4] {
            assert_resume_equivalence(scheme, depth, 8, &format!("eq-{i}-{depth}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The equivalence holds at *any* checkpoint cadence, not just the one
    /// the fixed test uses: a snapshot is a consistent cut wherever it
    /// lands.
    #[test]
    fn resume_equivalence_at_any_cadence(
        interval in 1u64..24,
        scheme_idx in 0usize..3,
        depth_idx in 0usize..2,
    ) {
        let scheme = [Scheme::Baseline, Scheme::Rho, Scheme::IrDwb][scheme_idx];
        let depth = [1u32, 4][depth_idx];
        assert_resume_equivalence(
            scheme,
            depth,
            interval,
            &format!("prop-{scheme_idx}-{depth}-{interval}"),
        );
    }
}

/// Drives a controller for a while, saves it mid-flight, restores into a
/// fresh twin, then drives both identically and requires identical
/// observable behavior — the restore really is a bit-faithful resume.
#[test]
fn timed_controller_roundtrips_mid_flight() {
    let cfg = tiny(Scheme::Baseline);
    let mut hier_a = MemoryHierarchy::new(cfg.hierarchy);
    let mut a = TimedController::new(&cfg);
    for i in 0..24u64 {
        a.submit(OramRequest {
            id: i + 1,
            addr: BlockAddr(i * 37 % (1 << 11)),
            blocking: i % 3 == 0,
            arrival: Cycle(i * 50),
        });
    }
    a.advance_until(Cycle(4_000), &mut hier_a).expect("advance");
    let done_a = a.take_completions();

    let mut w = SnapWriter::new();
    a.save_state(&mut w);
    let bytes = w.into_bytes();
    let mut b = TimedController::new(&cfg);
    let mut r = SnapReader::new(&bytes);
    b.restore_state(&mut r).expect("restore");
    r.finish().expect("no trailing snapshot bytes");

    let mut hier_b = hier_a.clone();
    for c in [&mut a, &mut b] {
        c.submit(OramRequest {
            id: 1000,
            addr: BlockAddr(99),
            blocking: true,
            arrival: Cycle(4_100),
        });
    }
    let end_a = a.drain(&mut hier_a).expect("drain a");
    let end_b = b.drain(&mut hier_b).expect("drain b");
    assert_eq!(end_a, end_b, "drain cycles diverged after restore");
    let mut rest_a = done_a.clone();
    rest_a.extend(a.take_completions());
    let mut rest_b = done_a; // the twin resumed after these completed
    rest_b.extend(b.take_completions());
    assert_eq!(rest_a, rest_b, "completion streams diverged after restore");
    assert_eq!(
        format!("{:?}{:?}{:?}", a.slot_stats(), a.stash_pressure(), a.dram_stats()),
        format!("{:?}{:?}{:?}", b.slot_stats(), b.stash_pressure(), b.dram_stats()),
        "controller statistics diverged after restore"
    );
}

#[test]
fn rho_controller_roundtrips_mid_flight() {
    let cfg = tiny(Scheme::Rho);
    let mut hier_a = MemoryHierarchy::new(cfg.hierarchy);
    let mut a = RhoController::new(&cfg);
    for i in 0..24u64 {
        a.submit(OramRequest {
            id: i + 1,
            addr: BlockAddr(i * 53 % (1 << 11)),
            blocking: i % 4 == 0,
            arrival: Cycle(i * 60),
        });
    }
    a.advance_until(Cycle(5_000), &mut hier_a).expect("advance");
    let done_a = a.take_completions();

    let mut w = SnapWriter::new();
    a.save_state(&mut w);
    let bytes = w.into_bytes();
    let mut b = RhoController::new(&cfg);
    let mut r = SnapReader::new(&bytes);
    b.restore_state(&mut r).expect("restore");
    r.finish().expect("no trailing snapshot bytes");

    let mut hier_b = hier_a.clone();
    let end_a = a.drain(&mut hier_a).expect("drain a");
    let end_b = b.drain(&mut hier_b).expect("drain b");
    assert_eq!(end_a, end_b, "drain cycles diverged after restore");
    let mut rest_a = done_a.clone();
    rest_a.extend(a.take_completions());
    let mut rest_b = done_a;
    rest_b.extend(b.take_completions());
    assert_eq!(rest_a, rest_b, "completion streams diverged after restore");
    assert_eq!(
        format!("{:?}{:?}{:?}", a.slot_stats(), a.stash_pressure(), a.dram_stats()),
        format!("{:?}{:?}{:?}", b.slot_stats(), b.stash_pressure(), b.dram_stats()),
        "controller statistics diverged after restore"
    );
}

/// Every way a snapshot can be damaged must surface as a typed
/// [`SimError::Snapshot`] from the resuming run — never a panic, never a
/// silent fresh start over bad state.
#[test]
fn damaged_snapshots_are_typed_errors() {
    let mut cfg = tiny(Scheme::Baseline);
    cfg.checkpoint_interval = 32;
    let limit = RunLimit::mem_ops(400);
    let fp = 0xC0FF_EE00u64;
    let path = snap_path("damaged");
    let try_resume = |path: &PathBuf, fp: u64| {
        let spec = CheckpointSpec {
            path: path.clone(),
            fingerprint: fp,
        };
        let gen = WorkloadGen::for_bench(Bench::Gcc, cfg.data_blocks(), cfg.seed);
        Simulation::try_run_checkpointed(&cfg, gen, limit, "gcc", Some(&spec)).map(|_| ())
    };

    // Well-framed snapshot whose payload is garbage: the restore path must
    // reject it structurally.
    checkpoint::persist(&path, fp, 7, &[0xAB; 64]).expect("persist garbage payload");
    match try_resume(&path, fp) {
        Err(SimError::Snapshot(_)) => {}
        other => panic!("garbage payload must be a typed snapshot error, got {other:?}"),
    }

    // Same file claimed by a different configuration: fingerprint mismatch.
    match try_resume(&path, fp ^ 1) {
        Err(SimError::Snapshot(SnapError::ConfigMismatch { .. })) => {}
        other => panic!("wrong fingerprint must be ConfigMismatch, got {other:?}"),
    }

    // A flipped payload byte: checksum failure.
    let mut bytes = std::fs::read(&path).expect("read frame");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted frame");
    match try_resume(&path, fp) {
        Err(SimError::Snapshot(SnapError::BadChecksum)) => {}
        other => panic!("flipped byte must be BadChecksum, got {other:?}"),
    }

    // A truncated file: torn write detected before any state is touched.
    bytes[last] ^= 0x40;
    bytes.truncate(bytes.len() - 10);
    std::fs::write(&path, &bytes).expect("write truncated frame");
    match try_resume(&path, fp) {
        Err(SimError::Snapshot(SnapError::Truncated)) => {}
        other => panic!("truncated frame must be Truncated, got {other:?}"),
    }

    // Garbage magic: a foreign file is never interpreted.
    std::fs::write(&path, b"definitely not a snapshot, sorry").expect("write foreign file");
    match try_resume(&path, fp) {
        Err(SimError::Snapshot(SnapError::BadMagic)) => {}
        other => panic!("foreign bytes must be BadMagic, got {other:?}"),
    }

    let _ = std::fs::remove_file(&path);
}
