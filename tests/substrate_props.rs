//! Property-based tests over the substrate crates: the invariants every
//! higher layer silently relies on, fuzzed across configuration space.

use iroram_dram::{DramConfig, DramSystem, MemRequest, SubtreeLayout};
use iroram_protocol::{AllocPreset, Leaf, TreeLayout, ZAllocation};
use iroram_sim_engine::{Cycle, SimRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The subtree layout is a bijection onto `[0, total_lines)` for any
    /// per-level Z assignment and group height.
    #[test]
    fn prop_subtree_layout_bijective(
        levels in 2usize..9,
        group in 1u32..5,
        zseed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from(zseed);
        let z: Vec<u32> = (0..levels)
            .map(|_| rng.next_below(5) as u32) // 0..=4, zeros allowed
            .collect();
        let mut z = z;
        *z.last_mut().expect("nonempty") = 4; // leaf level always backed
        let layout = SubtreeLayout::new(&z, group);
        let mut seen = std::collections::HashSet::new();
        for (level, &zl) in z.iter().enumerate() {
            for bucket in 0..(1u64 << level) {
                for slot in 0..zl {
                    let a = layout.slot_addr(level, bucket, slot);
                    prop_assert!(a < layout.total_lines());
                    prop_assert!(seen.insert(a), "duplicate address {a}");
                }
            }
        }
        prop_assert_eq!(seen.len() as u64, layout.total_lines());
    }

    /// Every path through the layout touches exactly `path_len` lines, for
    /// every leaf — the obliviousness-critical constant footprint.
    #[test]
    fn prop_path_footprint_constant(
        levels in 2usize..9,
        group in 1u32..5,
        leaf_seed in any::<u64>(),
    ) {
        let z = vec![4u32; levels];
        let layout = SubtreeLayout::new(&z, group);
        let expect = layout.path_len(0) as usize;
        let mut rng = SimRng::seed_from(leaf_seed);
        for _ in 0..16 {
            let leaf = rng.next_below(1u64 << (levels - 1));
            let slots = layout.path_slots(leaf, 0);
            prop_assert_eq!(slots.len(), expect);
            // And all of them are distinct.
            let set: std::collections::HashSet<u64> = slots.iter().copied().collect();
            prop_assert_eq!(set.len(), expect);
        }
    }

    /// DRAM scheduling is causal (completion ≥ arrival) and deterministic.
    #[test]
    fn prop_dram_causal_and_deterministic(
        n in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let reqs: Vec<MemRequest> = (0..n)
            .map(|_| {
                let addr = rng.next_below(1 << 16);
                let at = Cycle(rng.next_below(10_000));
                if rng.chance(0.4) {
                    MemRequest::write(addr, at)
                } else {
                    MemRequest::read(addr, at)
                }
            })
            .collect();
        let run = |reqs: &[MemRequest]| {
            let mut d = DramSystem::new(DramConfig::default());
            d.schedule_batch(reqs)
        };
        let a = run(&reqs);
        let b = run(&reqs);
        prop_assert_eq!(&a, &b, "scheduling must be deterministic");
        for (c, r) in a.iter().zip(&reqs) {
            prop_assert!(c.completion > r.arrival, "completion before arrival");
        }
        // Completions are unique per data-bus slot within a channel, so the
        // batch's max completion bounds everything.
        let max = a.iter().map(|c| c.completion).max().expect("nonempty");
        prop_assert!(max.raw() < 10_000 + 100_000, "runaway completion");
    }

    /// Every named allocation preset keeps the leaf level at Z=4 and
    /// shortens (or keeps) the path; at realistic tree heights the space
    /// loss stays under 2% (binary-tree geometry makes shrunken middles
    /// negligible only once the tree is deep enough — the paper's <1% claim
    /// is for L=25).
    #[test]
    fn prop_alloc_presets_sound(levels in 8usize..26, top_frac in 1usize..5) {
        let top = (levels * top_frac / 10).max(1).min(levels - 2);
        for preset in [
            AllocPreset::IrAlloc1,
            AllocPreset::IrAlloc2,
            AllocPreset::IrAlloc3,
            AllocPreset::IrAlloc4,
        ] {
            let a = ZAllocation::preset(preset, levels, top);
            prop_assert_eq!(a.z_of(levels - 1), 4);
            // The paper's <1% space claim holds when the memory-resident
            // region is at least as deep as its 15 levels (L=25, top 10):
            // the shrunken middle then sits ≥5 levels above the leaves and
            // binary-tree geometry makes it negligible.
            if levels - top >= 15 {
                prop_assert!(
                    a.space_reduction() < 0.02,
                    "{:?} loses {}",
                    preset,
                    a.space_reduction()
                );
            }
            let base = ZAllocation::uniform(levels, 4);
            prop_assert!(a.path_len(top) <= base.path_len(top));
        }
    }

    /// `common_depth` is symmetric, bounded by the tree height, and equals
    /// the leaf level iff the leaves coincide.
    #[test]
    fn prop_common_depth_algebra(levels in 2usize..16, s in any::<u64>()) {
        let layout = TreeLayout::new(ZAllocation::uniform(levels, 4));
        let n = layout.num_leaves();
        let mut rng = SimRng::seed_from(s);
        for _ in 0..32 {
            let a = Leaf(rng.next_below(n));
            let b = Leaf(rng.next_below(n));
            let d = layout.common_depth(a, b);
            prop_assert_eq!(d, layout.common_depth(b, a));
            prop_assert!(d < levels);
            prop_assert_eq!(d == levels - 1, a == b);
            // The bucket at the common depth really is shared.
            prop_assert_eq!(
                layout.bucket_on_path(a, d),
                layout.bucket_on_path(b, d)
            );
            // And one level deeper (if any) is not.
            if d + 1 < levels && a != b {
                prop_assert!(
                    layout.bucket_on_path(a, d + 1) != layout.bucket_on_path(b, d + 1)
                );
            }
        }
    }
}

/// Named regression for the fuzzer seed `levels = 8, top_frac = 1` — the
/// shallowest tree `prop_alloc_presets_sound` can draw. The top fraction
/// clamps to a single cached level, so every preset's shrunken middle sits
/// directly below the tree top, the tightest squeeze the presets allow.
/// Promoted to a deterministic unit test so the edge case runs on every
/// `cargo test`, not only when the fuzzer happens to re-draw it. (The
/// space-reduction bound is not asserted here: with `levels - top = 7 < 15`
/// the memory-resident region is too shallow for the paper's <1% claim.)
#[test]
fn alloc_presets_sound_at_min_depth_seed() {
    let (levels, top_frac) = (8usize, 1usize);
    let top = (levels * top_frac / 10).max(1).min(levels - 2);
    assert_eq!(top, 1, "seed must clamp to a single cached level");
    let base = ZAllocation::uniform(levels, 4);
    for preset in [
        AllocPreset::IrAlloc1,
        AllocPreset::IrAlloc2,
        AllocPreset::IrAlloc3,
        AllocPreset::IrAlloc4,
    ] {
        let a = ZAllocation::preset(preset, levels, top);
        assert_eq!(a.z_of(levels - 1), 4, "{preset:?} must keep leaf Z=4");
        assert!(
            a.path_len(top) <= base.path_len(top),
            "{preset:?} must not lengthen the memory path"
        );
    }
}

/// Deterministic end-to-end reproducibility across the whole stack: two
/// identical timed simulations produce byte-identical reports.
#[test]
fn full_stack_determinism() {
    use ir_oram::{RunLimit, Scheme, Simulation, SystemConfig};
    use iroram_trace::Bench;
    let mut cfg = SystemConfig::scaled(Scheme::IrOram);
    cfg.oram.levels = 11;
    cfg.oram.data_blocks = 1 << 12;
    cfg.oram.zalloc = ZAllocation::uniform(11, 4);
    cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 4 };
    let cfg = cfg.with_scheme(Scheme::IrOram);
    let a = Simulation::run_bench(&cfg, Bench::Mix, RunLimit::mem_ops(2_000));
    let b = Simulation::run_bench(&cfg, Bench::Mix, RunLimit::mem_ops(2_000));
    assert_eq!(
        serde_json_like(&a),
        serde_json_like(&b),
        "identical configs must give identical reports"
    );
}

fn serde_json_like(r: &ir_oram::SimReport) -> String {
    format!("{r:?}")
}
