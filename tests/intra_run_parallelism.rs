//! Intra-run parallelism determinism: `sched_threads` (channel-parallel
//! DRAM scheduling inside one simulation) and `--jobs` (cell-parallel
//! experiment workers) must both be invisible in every reported number.
//!
//! The two knobs compose — a parallel cell worker can itself fan a batch
//! out across scheduling workers — so this suite pins the full grid:
//! every scheme reports byte-identically at `sched_threads ∈ {1, 2, 4}`
//! × `jobs ∈ {1, 4}`, and random over-threshold batches produce the
//! reference scheduler's exact completions whatever the worker count.
//!
//! The worker-count clamp (never more workers than host cores) is lifted
//! via the test hook so the parallel dispatch + deterministic merge path
//! really runs, even on a single-core CI host.

use ir_oram::ALL_SCHEMES;
use iroram_dram::{AddressMapping, DramConfig, DramSystem, Interleave, MemRequest};
use iroram_experiments::runner::{run_scheme, ExpOptions};
use iroram_sim_engine::Cycle;
use iroram_trace::Bench;
use proptest::prelude::*;

const BENCHES: [Bench; 2] = [Bench::Mcf, Bench::Gcc];

/// A small-but-real scale, with the scheduling worker count threaded
/// through the same `--set` override path the CLI uses.
fn tiny_opts(sched_threads: u32, jobs: usize) -> ExpOptions {
    let mut o = ExpOptions::quick();
    o.mem_ops = 1_500;
    o.timed_levels = 10;
    o.jobs = jobs;
    o.overrides
        .push(("sched_threads".to_owned(), sched_threads.to_string()));
    o
}

#[test]
fn every_scheme_reports_identically_at_any_thread_and_job_count() {
    for scheme in ALL_SCHEMES {
        // SimReport intentionally has no PartialEq; the Debug form covers
        // every field of every nested stats struct.
        let baseline = format!("{:?}", run_scheme(&tiny_opts(1, 1), scheme, &BENCHES));
        for sched_threads in [1u32, 2, 4] {
            for jobs in [1usize, 4] {
                if (sched_threads, jobs) == (1, 1) {
                    continue;
                }
                let got = format!(
                    "{:?}",
                    run_scheme(&tiny_opts(sched_threads, jobs), scheme, &BENCHES)
                );
                assert_eq!(
                    baseline,
                    got,
                    "{} diverged at sched_threads={sched_threads} jobs={jobs}",
                    scheme.name()
                );
            }
        }
    }
}

/// `splitmix64`: tiny, seedable, and good enough to scatter addresses.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A batch of exactly `n` requests whose addresses, kinds, and arrivals
/// come from `seed`. Callers pick `n` at or above
/// [`DramSystem::PARALLEL_MIN_BATCH`] so the parallel dispatch engages.
fn random_batch(seed: &mut u64, n: usize) -> Vec<MemRequest> {
    (0..n)
        .map(|_| {
            let addr = splitmix(seed) % 50_000;
            let arrival = Cycle(splitmix(seed) % 400);
            if splitmix(seed) & 1 == 1 {
                MemRequest::write(addr, arrival)
            } else {
                MemRequest::read(addr, arrival)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_batches_match_the_reference_scheduler(
        threads in 2u32..9,
        extra in 0usize..192,
        channels_pick in 0usize..3,
        seed in any::<u64>(),
    ) {
        let channels = [2u32, 4, 8][channels_pick];
        let cfg = DramConfig {
            mapping: AddressMapping::new(channels, 8, 128, Interleave::CacheLine),
            ..DramConfig::default()
        };
        let mut par = DramSystem::new(cfg);
        par.set_sched_threads(threads);
        par.set_ignore_core_clamp(true);
        let mut naive = DramSystem::new(cfg);
        let mut stream = seed;
        let n = DramSystem::PARALLEL_MIN_BATCH + extra;
        for _ in 0..3 {
            let batch = random_batch(&mut stream, n);
            let a = par.schedule_batch(&batch);
            let b = naive.schedule_batch_reference(&batch);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(par.stats(), naive.stats());
        prop_assert_eq!(par.latency_underflows(), naive.latency_underflows());
    }
}
