//! Parallel-engine determinism regression: running the experiment matrix
//! with any `--jobs` value must reproduce the serial results bit for bit.
//!
//! Every simulation cell derives all of its randomness from its own config
//! seed, so the worker count can only change scheduling, never results.
//! These tests pin that contract — including the rendered CSV bytes, which
//! is what the recorded experiment outputs are built from.

use ir_oram::{Scheme, SimReport};
use iroram_experiments::render::Table;
use iroram_experiments::runner::{par_map, run_matrix, run_scheme, ExpOptions};
use iroram_trace::Bench;

/// A small-but-real scale: full protocol, two schemes, three benchmarks.
fn tiny_opts(jobs: usize) -> ExpOptions {
    let mut o = ExpOptions::quick();
    o.mem_ops = 1_500;
    o.timed_levels = 10;
    o.jobs = jobs;
    o
}

const SCHEMES: [Scheme; 2] = [Scheme::Baseline, Scheme::IrOram];
const BENCHES: [Bench; 3] = [Bench::Mcf, Bench::Xz, Bench::Gcc];

/// Renders a matrix of reports the way the experiment tables do, so the
/// comparison covers the exact bytes that end up in CSV files.
fn to_csv(rows: &[Vec<SimReport>]) -> String {
    let mut headers = vec!["Bench".to_owned()];
    headers.extend(SCHEMES.iter().map(|s| s.name().to_owned()));
    let mut t = Table::new("determinism probe", headers);
    for (b, bench) in BENCHES.iter().enumerate() {
        let mut row = vec![bench.name().to_owned()];
        for row_reports in rows {
            let r = &row_reports[b];
            row.push(format!(
                "{}:{}:{}:{}:{}",
                r.cycles,
                r.mem_ops,
                r.protocol.total_paths(),
                r.dram.requests,
                r.protocol.blocks_to_memory,
            ));
        }
        t.row(row);
    }
    t.to_csv()
}

#[test]
fn matrix_is_identical_serial_and_parallel() {
    let serial = run_matrix(&tiny_opts(1), &SCHEMES, &BENCHES);
    let par4 = run_matrix(&tiny_opts(4), &SCHEMES, &BENCHES);
    // SimReport intentionally has no PartialEq; the Debug form covers every
    // field of every nested stats struct.
    assert_eq!(
        format!("{serial:?}"),
        format!("{par4:?}"),
        "--jobs 4 must reproduce serial reports bit for bit"
    );
    assert_eq!(to_csv(&serial), to_csv(&par4), "CSV bytes must match");
}

#[test]
fn oversubscribed_workers_change_nothing() {
    // More workers than cells exercises the pool's tail handling.
    let serial = run_matrix(&tiny_opts(1), &SCHEMES, &BENCHES);
    let par32 = run_matrix(&tiny_opts(32), &SCHEMES, &BENCHES);
    assert_eq!(format!("{serial:?}"), format!("{par32:?}"));
}

#[test]
fn run_scheme_is_identical_serial_and_parallel() {
    for scheme in SCHEMES {
        let serial = run_scheme(&tiny_opts(1), scheme, &BENCHES);
        let par = run_scheme(&tiny_opts(3), scheme, &BENCHES);
        assert_eq!(format!("{serial:?}"), format!("{par:?}"), "{scheme:?}");
    }
}

#[test]
fn par_map_order_is_input_order() {
    let got = par_map(5, (0..100u64).collect::<Vec<_>>(), |x| x * 3 + 1);
    let expect: Vec<u64> = (0..100).map(|x| x * 3 + 1).collect();
    assert_eq!(got, expect);
}
