//! Quickstart: the two layers of the IR-ORAM library in one page.
//!
//! 1. The **functional protocol** (`iroram-protocol`): a complete Path ORAM
//!    you can read/write like a block device, with every path access it
//!    performs reported back.
//! 2. The **timed simulator** (`ir-oram`): the same protocol behind a
//!    fixed-rate controller, cache hierarchy and DDR3 model — used to
//!    compare the paper's schemes.
//!
//! Run with: `cargo run --release -p ir-oram --example quickstart`

use ir_oram::{RunLimit, Scheme, Simulation, SystemConfig};
use iroram_protocol::{BlockAddr, OramConfig, PathOram};
use iroram_trace::Bench;

fn main() {
    // --- Layer 1: functional Path ORAM ---------------------------------
    let mut oram = PathOram::new(OramConfig::tiny());
    oram.write(7, 0xC0FFEE);
    oram.write(8, 0xBEEF);
    assert_eq!(oram.read(7), 0xC0FFEE);
    assert_eq!(oram.read(8), 0xBEEF);

    let record = oram.run_access(BlockAddr(42), None);
    println!("accessing block 42:");
    println!("  served from  : {:?}", record.served);
    println!("  path accesses: {:?}", record.paths);

    oram.check_invariants().expect("protocol structure is sound");
    let stats = oram.stats();
    println!(
        "protocol: {} accesses, {} paths ({} PosMap), stash peak {}",
        stats.accesses,
        stats.total_paths(),
        stats.posmap_paths(),
        oram.stash_peak()
    );

    // --- Layer 2: timed full-system comparison -------------------------
    println!("\ntimed comparison on the xz workload (small scale):");
    let limit = RunLimit::mem_ops(5_000);
    let mut base_cycles = 0;
    for scheme in [Scheme::Baseline, Scheme::IrOram] {
        let mut cfg = SystemConfig::scaled(scheme);
        // Shrink the tree so the example runs in seconds.
        cfg.oram.levels = 13;
        cfg.oram.data_blocks = 1 << 14;
        cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(13, 4);
        cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 5 };
        let cfg = cfg.with_scheme(scheme);
        let report = Simulation::run_bench(&cfg, Bench::Xz, limit);
        if scheme == Scheme::Baseline {
            base_cycles = report.cycles;
        }
        println!(
            "  {:<10} {:>12} cycles  ({} dummy / {} total slots)  speedup {:.2}x",
            scheme.name(),
            report.cycles,
            report.slots.dummy_slots,
            report.slots.total_slots,
            base_cycles as f64 / report.cycles as f64,
        );
    }
}
