//! An oblivious key–value store built on the Path ORAM public API.
//!
//! The scenario from the paper's introduction: an application running on an
//! untrusted cloud server whose *access pattern* must not leak. This
//! example stores a key→value map inside the ORAM: keys are hashed to block
//! addresses with linear probing, so every lookup — hit or miss, hot key or
//! cold key — turns into the same kind of indistinguishable path accesses.
//!
//! Run with: `cargo run --release -p ir-oram --example secure_kv`

use iroram_hash::mix64;
use iroram_protocol::{OramConfig, PathOram};

/// A fixed-capacity oblivious key–value store.
///
/// Each ORAM block stores one entry packed as `(key, value)`; the key must
/// be nonzero (zero payload marks an empty slot). This is deliberately
/// simple — the point is that *any* storage layout inherits obliviousness
/// from the ORAM underneath.
struct ObliviousKv {
    oram: PathOram,
    capacity: u64,
}

impl ObliviousKv {
    fn new() -> Self {
        let cfg = OramConfig::tiny();
        let capacity = cfg.data_blocks / 2; // keys use half; values the rest
        ObliviousKv {
            oram: PathOram::new(cfg),
            capacity,
        }
    }

    fn slot_of(&self, key: u64, probe: u64) -> u64 {
        (mix64(key).wrapping_add(probe * 0x9E37)) % self.capacity
    }

    /// Inserts or updates `key` (nonzero). Returns false when full.
    fn put(&mut self, key: u64, value: u64) -> bool {
        assert_ne!(key, 0, "keys must be nonzero");
        for probe in 0..self.capacity {
            let slot = self.slot_of(key, probe);
            let stored_key = self.oram.read(slot);
            if stored_key == 0 || stored_key == key {
                self.oram.write(slot, key);
                self.oram.write(self.capacity + slot, value);
                return true;
            }
        }
        false
    }

    /// Looks `key` up.
    fn get(&mut self, key: u64) -> Option<u64> {
        for probe in 0..self.capacity {
            let slot = self.slot_of(key, probe);
            let stored_key = self.oram.read(slot);
            if stored_key == key {
                return Some(self.oram.read(self.capacity + slot));
            }
            if stored_key == 0 {
                return None;
            }
        }
        None
    }
}

fn main() {
    let mut kv = ObliviousKv::new();

    println!("inserting 40 entries…");
    for k in 1..=40u64 {
        assert!(kv.put(k, k * k), "store full");
    }
    println!("reading them back…");
    for k in 1..=40u64 {
        assert_eq!(kv.get(k), Some(k * k), "key {k}");
    }
    assert_eq!(kv.get(999), None);

    // The security story: every get/put decomposed into uniform, remapped
    // path accesses. A "hot" key and a cold key are indistinguishable.
    let stats = kv.oram.stats();
    println!(
        "\n{} logical ORAM accesses → {} path accesses \
         ({} data, {} PosMap, {} background-eviction)",
        stats.accesses,
        stats.total_paths(),
        stats.data_paths,
        stats.posmap_paths(),
        stats.bg_evict_paths,
    );
    kv.oram.check_invariants().expect("ORAM structure sound");
    println!("invariants hold; every block is on its mapped path.");
}
