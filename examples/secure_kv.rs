//! An oblivious key–value store built on the sharded KV service layer.
//!
//! The scenario from the paper's introduction: an application running on an
//! untrusted cloud server whose *access pattern* must not leak. This
//! example stores a key→value map inside ORAM shards via `iroram-kv`: keys
//! hash to a shard and to a fixed set of candidate slots inside it, so
//! every lookup — hit or miss, hot key or cold key — turns into the same
//! fixed number of indistinguishable path accesses. Unlike the linear-probe
//! toy this example used to be, a miss costs exactly as much as a hit
//! (probe reads + one refresh write), never a scan of the table.
//!
//! Run with: `cargo run --release -p iroram-kv --example secure_kv`

use iroram_kv::{KvConfig, KvOp, KvService, PROBES};

fn main() {
    // Two shards, sized for a few hundred keys; every shard is an
    // independent Path ORAM with its own position map and stash.
    let mut cfg = KvConfig::for_keys(256, 2);
    cfg.workers = 1; // the serial twin: same bytes as any worker count
    let mut kv = KvService::new(cfg);

    println!("inserting 40 entries…");
    for k in 1..=40u32 {
        assert_eq!(kv.put(k, k * k), Ok(None), "store full");
    }
    println!("reading them back…");
    for k in 1..=40u32 {
        assert_eq!(kv.get(k), Ok(Some(k * k)), "key {k}");
    }
    assert_eq!(kv.get(999), Ok(None));

    // Batched serving: queue a mixed workload, then flush once — the
    // service drains each shard's queue through a single ORAM access
    // batch and merges replies by submission order.
    for k in 1..=40u32 {
        kv.submit(KvOp::Get { key: k }).unwrap();
        kv.submit(KvOp::Put { key: k + 100, value: k }).unwrap();
    }
    let outcome = kv.flush();
    assert_eq!(outcome.replies.len(), 80);

    // The security story: every get/put decomposed into uniform, remapped
    // path accesses. A "hot" key and a cold key are indistinguishable, and
    // so are a hit and a miss: each op costs the same PROBES reads plus
    // one write-phase access (a real write, or an identity "refresh" that
    // remaps and re-encrypts just the same).
    let mut accesses = 0u64;
    let mut paths = 0u64;
    for report in kv.reports() {
        let s = &report.oram;
        println!(
            "shard {}: {} KV ops -> {} logical ORAM accesses -> {} path accesses \
             ({} data, {} PosMap, {} background-eviction)",
            report.shard,
            report.kv.gets + report.kv.puts + report.kv.deletes,
            s.accesses,
            s.total_paths(),
            s.data_paths,
            s.posmap_paths(),
            s.bg_evict_paths,
        );
        accesses += s.accesses;
        paths += s.total_paths();
    }
    println!(
        "\ntotal: {accesses} ORAM accesses ({} per KV op), {paths} path accesses",
        PROBES + 1
    );
    for shard in kv.shards() {
        shard.oram().check_invariants().expect("ORAM structure sound");
    }
    println!("invariants hold; every block is on its mapped path.");
}
