//! Trace capture and replay: persist a calibrated workload to disk in the
//! IRTR format, read it back, and replay it through the full-system
//! simulator — the workflow for comparing schemes on a *fixed* trace
//! (exactly the paper's Pin-trace methodology).
//!
//! Run with:
//! `cargo run --release -p ir-oram --example trace_replay [bench] [ops]`

use ir_oram::{Backend, OramRequest, Scheme, SystemConfig};
use iroram_cache::MemoryHierarchy;
use iroram_protocol::BlockAddr;
use iroram_sim_engine::Cycle;
use iroram_trace::{read_trace, write_trace, Bench, TraceRecord, WorkloadGen, ALL_BENCHES};

fn main() -> std::io::Result<()> {
    let bench = std::env::args()
        .nth(1)
        .and_then(|name| ALL_BENCHES.iter().copied().find(|b| b.name() == name))
        .unwrap_or(Bench::Xz);
    let ops: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);

    // 1. Capture: synthesize and persist the trace.
    let mut cfg = SystemConfig::scaled(Scheme::Baseline);
    cfg.oram.levels = 13;
    cfg.oram.data_blocks = 1 << 14;
    cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(13, 4);
    cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 5 };
    let cfg = cfg.with_scheme(Scheme::Baseline);

    let records: Vec<TraceRecord> =
        WorkloadGen::for_bench(bench, cfg.data_blocks(), 42).take_records(ops);
    let path = std::env::temp_dir().join(format!("iroram_{}.irtr", bench.name()));
    write_trace(std::fs::File::create(&path)?, &records)?;
    println!(
        "captured {} records of '{}' to {} ({} bytes)",
        records.len(),
        bench.name(),
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // 2. Replay: read the trace back and drive the ORAM controller with it
    //    directly (a miss-stream replay at one request per record).
    let replay = read_trace(std::fs::File::open(&path)?)?;
    assert_eq!(replay, records, "round-trip must be lossless");

    for scheme in [Scheme::Baseline, Scheme::IrOram] {
        let cfg = cfg.with_scheme(scheme);
        let mut backend = Backend::new(&cfg);
        let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy);
        let mut t = Cycle::ZERO;
        let mut served_onchip = 0u64;
        for (i, rec) in replay.iter().enumerate() {
            t += rec.gap as u64 / cfg.ipc + 1;
            let (outcome, _) = hierarchy.access_full(rec.addr, rec.is_write);
            if outcome != iroram_cache::AccessOutcome::Miss {
                continue;
            }
            match backend {
                Backend::Single(ref mut ctl) => {
                    if ctl.front_try(BlockAddr(rec.addr), t).is_some() {
                        served_onchip += 1;
                    } else {
                        ctl.submit(OramRequest {
                            id: i as u64,
                            addr: BlockAddr(rec.addr),
                            arrival: t,
                            blocking: false,
                        });
                        ctl.advance_until(t, &mut hierarchy).expect("replay");
                    }
                }
                Backend::Rho(_) => unreachable!("schemes above are single-tree"),
            }
        }
        if let Backend::Single(ref mut ctl) = backend {
            let end = ctl.drain(&mut hierarchy).expect("replay");
            let slots = *ctl.slot_stats();
            println!(
                "{:<10} finished at {:>12}  slots: {} real / {} dummy / {} converted  (on-chip serves: {})",
                scheme.name(),
                end,
                slots.real_slots,
                slots.dummy_slots,
                slots.converted_slots,
                served_onchip,
            );
        }
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
