//! Memory-intensity explorer: sweep the timing-protection interval `T` and
//! the scheme, and watch where the cycles go.
//!
//! The paper's Section III argues Path ORAM's problem is *memory intensity*
//! — every slot moves `PL` blocks whether it carries real work or a dummy.
//! This tool makes that trade-off tangible: small `T` wastes bandwidth on
//! dummies, large `T` starves real requests.
//!
//! Run with:
//! `cargo run --release -p ir-oram --example intensity_explorer [bench]`

use ir_oram::{RunLimit, Scheme, Simulation, SystemConfig};
use iroram_trace::{Bench, ALL_BENCHES};

fn small_system(scheme: Scheme, t_interval: u64) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(scheme);
    cfg.oram.levels = 13;
    cfg.oram.data_blocks = 1 << 14;
    cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(13, 4);
    cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 5 };
    cfg.t_interval = t_interval;
    cfg.with_scheme(scheme)
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|name| ALL_BENCHES.iter().copied().find(|b| b.name() == name))
        .unwrap_or(Bench::Mcf);
    let limit = RunLimit::mem_ops(4_000);

    println!("workload: {}  ({} memory ops)\n", bench.name(), 4_000);
    println!(
        "{:<10} {:>6} {:>12} {:>8} {:>8} {:>8} {:>9}",
        "scheme", "T", "cycles", "real%", "dummy%", "conv%", "KB moved"
    );
    for scheme in [Scheme::Baseline, Scheme::IrAlloc, Scheme::IrStash, Scheme::IrDwb, Scheme::IrOram]
    {
        for t in [500u64, 1000, 2000, 4000] {
            let cfg = small_system(scheme, t);
            let r = Simulation::run_bench(&cfg, bench, limit);
            let total = r.slots.total_slots.max(1) as f64;
            let moved_kb =
                (r.protocol.blocks_from_memory + r.protocol.blocks_to_memory) * 64 / 1024;
            println!(
                "{:<10} {:>6} {:>12} {:>7.1}% {:>7.1}% {:>7.1}% {:>8}KB",
                scheme.name(),
                t,
                r.cycles,
                100.0 * r.slots.real_slots as f64 / total,
                100.0 * r.slots.dummy_slots as f64 / total,
                100.0 * r.slots.converted_slots as f64 / total,
                moved_kb,
            );
        }
        println!();
    }
    println!("note: higher T → fewer dummies but slower demand service;");
    println!("IR-ORAM reduces blocks moved per path instead, which helps at every T.");
}
